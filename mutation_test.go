package rbq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"rbq/internal/gen"
	"rbq/internal/graph"
)

// shadow mirrors the DB's mutable graph as plain lists, so the property
// test can rebuild "the graph the DB claims to be" from scratch and
// compare answers bit for bit.
type shadow struct {
	labels   []string
	edges    map[[2]NodeID]int // edge -> index in list
	edgeList [][2]NodeID
}

func newShadow(g *Graph) *shadow {
	s := &shadow{edges: make(map[[2]NodeID]int, g.NumEdges())}
	for v := 0; v < g.NumNodes(); v++ {
		s.labels = append(s.labels, g.Label(NodeID(v)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Out(NodeID(v)) {
			s.addEdge([2]NodeID{NodeID(v), w})
		}
	}
	return s
}

func (s *shadow) addEdge(e [2]NodeID) {
	s.edges[e] = len(s.edgeList)
	s.edgeList = append(s.edgeList, e)
}

func (s *shadow) delEdge(e [2]NodeID) {
	i := s.edges[e]
	last := s.edgeList[len(s.edgeList)-1]
	s.edgeList[i] = last
	s.edges[last] = i
	s.edgeList = s.edgeList[:len(s.edgeList)-1]
	delete(s.edges, e)
}

// randomBatch draws a batch of ops valid against the shadow (applying
// each op's effect to the shadow immediately, so later ops in the batch
// see earlier ones — the same order contract DB.Apply validates).
func (s *shadow) randomBatch(rng *rand.Rand, n int) []Op {
	ops := make([]Op, 0, n)
	for len(ops) < n {
		switch k := rng.Intn(10); {
		case k == 0: // node with an existing label
			label := s.labels[rng.Intn(len(s.labels))]
			ops = append(ops, AddNode(label))
			s.labels = append(s.labels, label)
		case k == 1: // node with a possibly brand-new label
			label := fmt.Sprintf("NEW%d", rng.Intn(4))
			ops = append(ops, AddNode(label))
			s.labels = append(s.labels, label)
		case k <= 6: // edge add
			e := [2]NodeID{NodeID(rng.Intn(len(s.labels))), NodeID(rng.Intn(len(s.labels)))}
			if _, ok := s.edges[e]; ok {
				continue
			}
			ops = append(ops, AddEdge(e[0], e[1]))
			s.addEdge(e)
		default: // edge delete
			if len(s.edgeList) == 0 {
				continue
			}
			e := s.edgeList[rng.Intn(len(s.edgeList))]
			ops = append(ops, DelEdge(e[0], e[1]))
			s.delEdge(e)
		}
	}
	return ops
}

// rebuild constructs a fresh graph from the shadow.
func (s *shadow) rebuild() *Graph {
	b := NewGraphBuilder(len(s.labels), len(s.edgeList))
	for _, l := range s.labels {
		b.AddNode(l)
	}
	// Builder sorts and dedups, so insertion order does not matter.
	for _, e := range s.edgeList {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// queryMatrix runs every Semantics × Mode combination the ISSUE's
// equivalence contract names and returns the Results (errors rendered
// into the value so mismatched failures diverge too).
func queryMatrix(t *testing.T, db *DB, q *Pattern, pin NodeID, alpha float64) []Result {
	t.Helper()
	ctx := context.Background()
	reqs := []Request{
		{Semantics: Simulation, Mode: Bounded, Anchor: &pin, Alpha: alpha},
		{Semantics: Simulation, Mode: Exact, Anchor: &pin},
		{Semantics: Simulation, Mode: Unanchored, Alpha: alpha},
		{Semantics: Subgraph, Mode: Bounded, Anchor: &pin, Alpha: alpha, MaxSteps: 500_000},
		{Semantics: Subgraph, Mode: Exact, Anchor: &pin, MaxSteps: 500_000},
		{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha},
	}
	out := make([]Result, len(reqs))
	for i, req := range reqs {
		res, err := db.Query(ctx, q, req)
		if err != nil {
			res = Result{Matches: []NodeID{-2}, Personalized: NoNode}
		}
		out[i] = res
	}
	return out
}

// TestSnapshotEquivalentToRebuild is the mutation subsystem's core
// property: for random op batches, querying the live Snapshot (overlay
// graph + patched Aux) is bit-for-bit identical to rebuilding the graph
// from scratch and querying that — across Simulation/Subgraph ×
// Bounded/Exact/Unanchored, including every fragment/budget/visited
// counter in the Result. Run both with compaction disabled (pure
// overlay execution) and with compaction after every batch (exercising
// the rebuild-and-swap path).
func TestSnapshotEquivalentToRebuild(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		for _, compactEvery := range []bool{false, true} {
			name := fmt.Sprintf("seed=%d/compact=%v", seed, compactEvery)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				base := RandomGraph(400, 1000, seed+1, true)
				db := NewDB(base)
				if compactEvery {
					db.SetCompactThreshold(1)
				}
				sh := newShadow(base)

				// Patterns are drawn from the base graph; their label
				// constraints stay meaningful across mutations. Pins are
				// re-drawn per round from nodes carrying the personalized
				// label, so they are valid in both DBs by construction.
				var pats []*Pattern
				for i := int64(0); i < 40 && len(pats) < 3; i++ {
					cand := graph.NodeID(rng.Intn(base.NumNodes()))
					if base.Degree(cand) < 2 {
						continue
					}
					if q := gen.PatternAt(base, cand, gen.PatternConfig{Nodes: 4, Edges: 6, Seed: seed + i}); q != nil {
						pats = append(pats, q)
					}
				}
				if len(pats) == 0 {
					t.Fatal("no patterns extracted")
				}

				rounds := 4
				batch := 50
				if testing.Short() {
					rounds = 2
				}
				for round := 0; round < rounds; round++ {
					ops := sh.randomBatch(rng, batch)
					if err := db.Apply(ops); err != nil {
						t.Fatalf("round %d: Apply: %v", round, err)
					}
					if err := db.Graph().Validate(); err != nil {
						t.Fatalf("round %d: snapshot graph invalid: %v", round, err)
					}
					ref := NewDB(sh.rebuild())
					if db.Graph().NumNodes() != ref.Graph().NumNodes() ||
						db.Graph().NumEdges() != ref.Graph().NumEdges() {
						t.Fatalf("round %d: size diverges: %d/%d vs %d/%d", round,
							db.Graph().NumNodes(), db.Graph().NumEdges(),
							ref.Graph().NumNodes(), ref.Graph().NumEdges())
					}
					for pi, q := range pats {
						// A pin valid under the pattern's personalized label.
						l := ref.Graph().LabelIDOf(q.Label(q.Personalized()))
						cands := ref.Graph().NodesWithLabel(l)
						if len(cands) == 0 {
							continue
						}
						pin := cands[rng.Intn(len(cands))]
						got := queryMatrix(t, db, q, pin, 0.05)
						want := queryMatrix(t, ref, q, pin, 0.05)
						if !reflect.DeepEqual(got, want) {
							for i := range got {
								if !reflect.DeepEqual(got[i], want[i]) {
									t.Errorf("round %d pattern %d req %d: snapshot %+v\nrebuild  %+v",
										round, pi, i, got[i], want[i])
								}
							}
							t.FailNow()
						}
					}
				}
				if compactEvery {
					if ms := db.MutationStats(); ms.Compactions == 0 || ms.LiveDeltaOps != 0 {
						t.Fatalf("compact-every run never compacted: %+v", ms)
					}
				} else {
					if ms := db.MutationStats(); ms.Compactions != 0 || ms.LiveDeltaOps == 0 {
						t.Fatalf("overlay run compacted unexpectedly: %+v", ms)
					}
				}
			})
		}
	}
}

// TestIncrementalCompactEquivalence is the incremental-compaction
// property: three DBs walk identical random op batches — one compacting
// every batch via CSR splicing (fraction 1), one compacting every batch
// via full rebuild (fraction 0), and a from-scratch NewDB over the
// shadow's rebuilt graph — and every Semantics × Mode query answer must
// match bit for bit, every round. Mode telemetry must report the pinned
// path on both mutable DBs.
func TestIncrementalCompactEquivalence(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 31))
			base := RandomGraph(400, 1000, seed+2, true)
			inc := NewDB(base)
			inc.SetCompactThreshold(1)
			inc.SetCompactSpliceFraction(1) // splice no matter how large the delta
			full := NewDB(base)
			full.SetCompactThreshold(1)
			full.SetCompactSpliceFraction(0) // always the rebuild reference
			sh := newShadow(base)

			var pats []*Pattern
			for i := int64(0); i < 40 && len(pats) < 3; i++ {
				cand := graph.NodeID(rng.Intn(base.NumNodes()))
				if base.Degree(cand) < 2 {
					continue
				}
				if q := gen.PatternAt(base, cand, gen.PatternConfig{Nodes: 4, Edges: 6, Seed: seed + i}); q != nil {
					pats = append(pats, q)
				}
			}
			if len(pats) == 0 {
				t.Fatal("no patterns extracted")
			}

			rounds := 4
			if testing.Short() {
				rounds = 2
			}
			for round := 0; round < rounds; round++ {
				ops := sh.randomBatch(rng, 50)
				if err := inc.Apply(ops); err != nil {
					t.Fatalf("round %d: incremental Apply: %v", round, err)
				}
				if err := full.Apply(ops); err != nil {
					t.Fatalf("round %d: full Apply: %v", round, err)
				}
				if err := inc.Graph().Validate(); err != nil {
					t.Fatalf("round %d: spliced graph invalid: %v", round, err)
				}
				ref := NewDB(sh.rebuild())
				for pi, q := range pats {
					l := ref.Graph().LabelIDOf(q.Label(q.Personalized()))
					cands := ref.Graph().NodesWithLabel(l)
					if len(cands) == 0 {
						continue
					}
					pin := cands[rng.Intn(len(cands))]
					want := queryMatrix(t, ref, q, pin, 0.05)
					for which, db := range map[string]*DB{"incremental": inc, "full": full} {
						got := queryMatrix(t, db, q, pin, 0.05)
						if !reflect.DeepEqual(got, want) {
							for i := range got {
								if !reflect.DeepEqual(got[i], want[i]) {
									t.Errorf("round %d pattern %d req %d: %s %+v\nrebuild %+v",
										round, pi, i, which, got[i], want[i])
								}
							}
							t.FailNow()
						}
					}
				}
			}
			ims, fms := inc.MutationStats(), full.MutationStats()
			if ims.Compactions == 0 || ims.Mode != CompactModeIncremental {
				t.Fatalf("incremental DB did not splice: %+v", ims)
			}
			if fms.Compactions == 0 || fms.Mode != CompactModeFull {
				t.Fatalf("full DB did not rebuild: %+v", fms)
			}
			if ims.LastCompactTouchedNodes == 0 {
				t.Fatalf("spliced compaction reported no touched nodes: %+v", ims)
			}
		})
	}
}

// TestCompactSpliceFractionFallback: at the default fraction, a small
// delta splices and a delta touching more than that fraction of the
// node set falls back to a full rebuild — visible in MutationStats.
func TestCompactSpliceFractionFallback(t *testing.T) {
	base := RandomGraph(400, 1000, 9, true)
	db := NewDB(base)
	sh := newShadow(base)

	// Small delta: one fresh node plus an edge — touches far below 25%.
	n := NodeID(len(sh.labels))
	if err := db.Apply([]Op{AddNode(sh.labels[0]), AddEdge(n, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	ms := db.MutationStats()
	if ms.Mode != CompactModeIncremental {
		t.Fatalf("small delta did not splice: %+v", ms)
	}
	if ms.LastCompactTouchedNodes == 0 || ms.LastCompactNs <= 0 {
		t.Fatalf("splice telemetry missing: %+v", ms)
	}

	// Large delta: fan edges out of >25% of the base nodes. The touched
	// set exceeds the default fraction, so the compactor must refuse to
	// splice and rebuild instead — and answers must stay right.
	g := db.Graph()
	var ops []Op
	for v := 0; v < 150; v++ {
		w := NodeID((v + 211) % g.NumNodes())
		if NodeID(v) == w || g.HasEdge(NodeID(v), w) {
			continue
		}
		ops = append(ops, AddEdge(NodeID(v), w))
	}
	if len(ops) < 101 { // 25% of ~401 nodes
		t.Fatalf("fixture too dense: only %d fresh edges", len(ops))
	}
	if err := db.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	ms = db.MutationStats()
	if ms.Mode != CompactModeFull {
		t.Fatalf("oversized delta did not fall back to full rebuild: %+v", ms)
	}
	if err := db.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyAtomicityAndValidation: a batch with an invalid op leaves
// the DB untouched — snapshot, epoch and stats — and the error wraps
// ErrBadRequest.
func TestApplyAtomicityAndValidation(t *testing.T) {
	g := RandomGraph(50, 120, 1, false)
	db := NewDB(g)
	before := db.MutationStats()
	gBefore := db.Graph()

	var existing [2]NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if out := g.Out(NodeID(v)); len(out) > 0 {
			existing = [2]NodeID{NodeID(v), out[0]}
			break
		}
	}
	bad := [][]Op{
		{AddNode("X"), AddEdge(0, 999)},                       // out of range
		{AddEdge(existing[0], existing[1])},                   // duplicate of base edge
		{DelEdge(0, 0), AddNode("X")},                         // deleting a missing self-loop
		{AddNode("")},                                         // empty label
		{AddEdge(1, 2), AddEdge(1, 2)},                        // in-batch duplicate
		{DelEdge(existing[0], existing[1]), DelEdge(existing[0], existing[1])}, // double delete
	}
	for i, ops := range bad {
		err := db.Apply(ops)
		if err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Fatalf("bad batch %d: error %v does not wrap ErrBadRequest", i, err)
		}
	}
	if after := db.MutationStats(); after != before {
		t.Fatalf("failed batches changed stats: %+v -> %+v", before, after)
	}
	if db.Graph() != gBefore {
		t.Fatal("failed batches republished the snapshot")
	}
	if err := db.Apply(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestPreparedQueryPinsItsSnapshot: a PreparedQuery keeps answering
// from the snapshot current at Prepare time, while DB.Query sees the
// mutation — the documented epoch-pinning contract.
func TestPreparedQueryPinsItsSnapshot(t *testing.T) {
	b := NewGraphBuilder(4, 4)
	m := b.AddNode("M")
	c1 := b.AddNode("C")
	c2 := b.AddNode("C")
	b.AddEdge(m, c1)
	g := b.Build()
	q, err := ParsePattern("node 0 M*\nnode 1 C!\nedge 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g)
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := pq.Query(ctx, Request{Mode: Exact})
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("before mutation: %v %v", res.Matches, err)
	}
	if err := db.Apply([]Op{AddEdge(m, c2)}); err != nil {
		t.Fatal(err)
	}
	res, err = pq.Query(ctx, Request{Mode: Exact})
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("prepared query saw the mutation: %v %v", res.Matches, err)
	}
	fresh, err := db.Query(ctx, q, Request{Mode: Exact})
	if err != nil || len(fresh.Matches) != 2 {
		t.Fatalf("DB.Query missed the mutation: %v %v", fresh.Matches, err)
	}
}

// TestPlanCacheInvalidationOnApply: an Apply bumps the epoch, so the
// next use of a cached template recompiles (counted as an
// invalidation); an Apply that grows the label alphabet flushes the
// cache wholesale. The background warmer is disabled so the lazy
// reader-side path is what the counters observe (warmed-path behavior
// has its own tests in warm_test.go); with the warmer off, compaction
// falls back to the wholesale flush.
func TestPlanCacheInvalidationOnApply(t *testing.T) {
	g := RandomGraph(200, 500, 2, false)
	db := NewDB(g)
	db.SetPlanWarmCount(0)
	rng := rand.New(rand.NewSource(9))
	var q *Pattern
	for i := int64(0); q == nil && i < 50; i++ {
		cand := graph.NodeID(rng.Intn(g.NumNodes()))
		if g.Degree(cand) >= 2 {
			q = gen.PatternAt(g, cand, gen.PatternConfig{Nodes: 3, Edges: 4, Seed: i})
		}
	}
	if q == nil {
		t.Fatal("no pattern")
	}
	ctx := context.Background()
	pin := Pin(0)
	l := g.LabelIDOf(q.Label(q.Personalized()))
	pin = Pin(g.NodesWithLabel(l)[0])

	mustQuery := func() {
		if _, err := db.Query(ctx, q, Request{Anchor: pin, Alpha: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	mustQuery() // miss: first compile
	mustQuery() // hit
	cs := db.PlanCacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Invalidations != 0 {
		t.Fatalf("warm-up counters: %+v", cs)
	}
	// Same-alphabet mutation: lazy per-snapshot invalidation.
	if err := db.Apply([]Op{AddNode(g.Label(0))}); err != nil {
		t.Fatal(err)
	}
	if cs = db.PlanCacheStats(); cs.Size != 1 {
		t.Fatalf("same-alphabet Apply flushed the cache: %+v", cs)
	}
	mustQuery() // stale epoch: recompile
	mustQuery() // hit at the new epoch
	cs = db.PlanCacheStats()
	if cs.Invalidations != 1 || cs.Misses != 2 || cs.Hits != 2 {
		t.Fatalf("post-mutation counters: %+v", cs)
	}
	// Alphabet-growing mutation: eager flush. Dropped entries are not
	// invalidations (that counter tracks recompiles performed); the
	// flush shows as Size 0, and the refill as a plain miss.
	if err := db.Apply([]Op{AddNode("BRAND-NEW-LABEL")}); err != nil {
		t.Fatal(err)
	}
	if cs = db.PlanCacheStats(); cs.Size != 0 || cs.Invalidations != 1 {
		t.Fatalf("alphabet growth did not flush: %+v", cs)
	}
	mustQuery()
	cs = db.PlanCacheStats()
	if cs.Size != 1 || cs.Misses != 3 || cs.Invalidations != 1 {
		t.Fatalf("cache did not refill as a plain miss: %+v", cs)
	}
	if cs.Invalidations > cs.Misses {
		t.Fatalf("Invalidations must stay a subset of Misses: %+v", cs)
	}
	// Compaction prunes stale entries: they are unservable anyway (epoch
	// keying) and would otherwise pin the replaced base in the LRU.
	if err := db.Apply([]Op{AddNode(g.Label(0))}); err != nil {
		t.Fatal(err)
	}
	db.Compact()
	if cs = db.PlanCacheStats(); cs.Size != 0 {
		t.Fatalf("compaction left stale entries pinning the old base: %+v", cs)
	}
	mustQuery()
	if cs = db.PlanCacheStats(); cs.Size != 1 {
		t.Fatalf("cache did not refill after compaction: %+v", cs)
	}
}

// TestApplyQueryCompactRace hammers concurrent Apply / Query /
// QueryBatch / Compact with a tiny compaction threshold, so snapshots
// churn through overlay and rebuilt bases while readers run. The
// assertions are weak (no torn results, valid snapshots); the value is
// under -race, where any unsynchronized snapshot handoff bites. Runs
// once per compaction path: splice pins every compaction incremental,
// rebuild pins every compaction to the full-rebuild reference.
func TestApplyQueryCompactRace(t *testing.T) {
	for _, tc := range []struct {
		name string
		frac float64
	}{
		{"splice", 1},
		{"rebuild", 0},
	} {
		t.Run(tc.name, func(t *testing.T) { applyQueryCompactRace(t, tc.frac) })
	}
}

func applyQueryCompactRace(t *testing.T, spliceFrac float64) {
	base := RandomGraph(300, 800, 5, true)
	db := NewDB(base)
	db.SetCompactThreshold(64)
	db.SetCompactSpliceFraction(spliceFrac)
	rng := rand.New(rand.NewSource(17))
	var q *Pattern
	for i := int64(0); q == nil && i < 50; i++ {
		cand := graph.NodeID(rng.Intn(base.NumNodes()))
		if base.Degree(cand) >= 2 {
			q = gen.PatternAt(base, cand, gen.PatternConfig{Nodes: 4, Edges: 6, Seed: i})
		}
	}
	if q == nil {
		t.Fatal("no pattern")
	}
	l := base.LabelIDOf(q.Label(q.Personalized()))
	pins := base.NodesWithLabel(l)

	deadline := time.Now().Add(400 * time.Millisecond)
	if testing.Short() {
		deadline = time.Now().Add(150 * time.Millisecond)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	// Writers: small valid-shaped batches; concurrent writers may race
	// on the same edge, so ErrBadRequest is tolerated — the point is
	// that the DB stays coherent.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				g := db.Graph()
				n := g.NumNodes()
				ops := []Op{AddNode("RACE")}
				for i := 0; i < 6; i++ {
					if rng.Intn(3) == 0 {
						v := NodeID(rng.Intn(n))
						if out := g.Out(v); len(out) > 0 {
							ops = append(ops, DelEdge(v, out[rng.Intn(len(out))]))
							continue
						}
					}
					ops = append(ops, AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n))))
				}
				if err := db.Apply(ops); err != nil && !errors.Is(err, ErrBadRequest) {
					t.Errorf("Apply: %v", err)
					return
				}
			}
		}(int64(100 + w))
	}
	// Readers: single queries and batches, all modes.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				pin := pins[rng.Intn(len(pins))]
				if _, err := db.Query(ctx, q, Request{Anchor: &pin, Alpha: 0.02}); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if rng.Intn(4) == 0 {
					qs := []AnchoredQuery{{Q: q, At: pins[rng.Intn(len(pins))]}, {Q: q, At: pins[rng.Intn(len(pins))]}}
					if _, err := db.QueryBatch(ctx, qs, Request{Alpha: 0.02}, 2); err != nil {
						t.Errorf("QueryBatch: %v", err)
						return
					}
				}
				if rng.Intn(8) == 0 {
					if _, err := db.Query(ctx, q, Request{Mode: Unanchored, Alpha: 0.02}); err != nil {
						t.Errorf("Unanchored: %v", err)
						return
					}
				}
			}
		}(int64(200 + r))
	}
	// Compactor: explicit rebuilds on top of the threshold churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			db.Compact()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if err := db.Graph().Validate(); err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	ms := db.MutationStats()
	if ms.Epoch == 0 {
		t.Fatal("no mutations landed during the hammer")
	}
	t.Logf("hammer: epoch %d, %d compactions, %d live ops, |V|=%d |E|=%d",
		ms.Epoch, ms.Compactions, ms.LiveDeltaOps, db.Graph().NumNodes(), db.Graph().NumEdges())
}

// TestNewDBAcceptsOverlayView: any *Graph the library hands out —
// including the overlay view returned by Graph() after Apply — is a
// valid NewDB argument (compacted into a standalone base internally).
func TestNewDBAcceptsOverlayView(t *testing.T) {
	db := NewDB(RandomGraph(80, 200, 3, false))
	if err := db.Apply([]Op{AddNode("V"), AddEdge(NodeID(db.Graph().NumNodes()-1), 0)}); err != nil {
		t.Fatal(err)
	}
	view := db.Graph()
	if !view.HasOverlay() {
		t.Fatal("expected an overlay view after Apply")
	}
	db2 := NewDB(view)
	if db2.Graph().HasOverlay() {
		t.Fatal("NewDB kept the overlay view as its base")
	}
	if db2.Graph().NumNodes() != view.NumNodes() || db2.Graph().NumEdges() != view.NumEdges() {
		t.Fatalf("compacted base diverges: %d/%d vs %d/%d",
			db2.Graph().NumNodes(), db2.Graph().NumEdges(), view.NumNodes(), view.NumEdges())
	}
	if err := db2.Apply([]Op{AddNode("W")}); err != nil {
		t.Fatalf("mutating the re-wrapped DB: %v", err)
	}
}
