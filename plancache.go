package rbq

// The DB-level plan cache: a bounded, concurrency-safe LRU of compiled
// plans keyed by pattern identity (the textual form of Pattern.String,
// cached on the pattern so a hit costs no allocation). Independent
// callers issuing the same hot template — even from pointer-distinct
// Parse results — share one compiled plan; PreparedQuery remains the
// explicit, cache-independent way to pin a compilation.

import (
	"container/list"
	"fmt"
	"sync"

	"rbq/internal/graph"
	"rbq/internal/plan"
)

// DefaultPlanCacheCapacity is the number of distinct pattern templates a
// DB keeps compiled; see DB.SetPlanCacheCapacity.
const DefaultPlanCacheCapacity = 256

// PlanCacheStats is a snapshot of a DB's plan-cache counters.
type PlanCacheStats struct {
	// Hits and Misses count lookups since the DB was built. A miss
	// compiles the pattern and inserts it (evicting the least recently
	// used entry when full), so Misses also counts compilations.
	Hits, Misses uint64
	// Size is the number of plans currently cached; Capacity the bound.
	Size, Capacity int
}

// planCache is the bounded LRU. Plans are immutable after compilation
// (their lazy selectivity tier is internally synchronized), so one entry
// may serve concurrent queries; the mutex guards only the map and the
// recency list.
type planCache struct {
	mu           sync.Mutex
	capacity     int
	ll           list.List // front = most recently used; values are *planEntry
	m            map[string]*list.Element
	hits, misses uint64
}

type planEntry struct {
	key string
	pl  *plan.Plan
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{capacity: capacity, m: make(map[string]*list.Element)}
	c.ll.Init()
	return c
}

// lookup returns the compiled plan for q, compiling and inserting it on a
// miss. hit reports whether the plan was already cached.
func (c *planCache) lookup(aux *graph.Aux, q *Pattern) (pl *plan.Plan, hit bool, err error) {
	if q == nil {
		return nil, false, fmt.Errorf("rbq: nil pattern")
	}
	key := q.String() // cached on the pattern: no render, no allocation
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		pl = el.Value.(*planEntry).pl
		c.mu.Unlock()
		return pl, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: concurrent misses on distinct templates
	// must not serialize behind one compilation.
	pl, err = plan.New(aux, q)
	if err != nil {
		return nil, false, fmt.Errorf("rbq: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		// Another goroutine compiled the same template first; share its
		// plan so concurrent evaluations converge on one entry.
		c.ll.MoveToFront(el)
		return el.Value.(*planEntry).pl, false, nil
	}
	c.m[key] = c.ll.PushFront(&planEntry{key: key, pl: pl})
	c.evictLocked()
	return pl, false, nil
}

func (c *planCache) evictLocked() {
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.capacity}
}

func (c *planCache) setCapacity(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	c.evictLocked()
}

// PlanCacheStats returns the DB's plan-cache counters: how many Query
// calls found their template compiled (hits) versus compiled it (misses),
// and the cache occupancy. The same outcome is reported per query in
// QueryStats.PlanCacheHit when Request.WantStats is set.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.stats() }

// SetPlanCacheCapacity bounds the plan cache to n compiled templates
// (minimum 1; the default is DefaultPlanCacheCapacity), evicting the
// least recently used entries if it already holds more. Safe to call
// concurrently with queries; in-flight evaluations of an evicted plan
// run to completion.
func (db *DB) SetPlanCacheCapacity(n int) { db.plans.setCapacity(n) }
