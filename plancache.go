package rbq

// The DB-level plan cache: a bounded, concurrency-safe LRU of compiled
// plans keyed by pattern identity (the textual form of Pattern.String,
// cached on the pattern so a hit costs no allocation). Independent
// callers issuing the same hot template — even from pointer-distinct
// Parse results — share one compiled plan; PreparedQuery remains the
// explicit, cache-independent way to pin a compilation.

import (
	"container/list"
	"fmt"
	"sync"

	"rbq/internal/graph"
	"rbq/internal/plan"
)

// DefaultPlanCacheCapacity is the number of distinct pattern templates a
// DB keeps compiled; see DB.SetPlanCacheCapacity.
const DefaultPlanCacheCapacity = 256

// PlanCacheStats is a snapshot of a DB's plan-cache counters.
type PlanCacheStats struct {
	// Hits and Misses count lookups since the DB was built. A miss
	// compiles the pattern and inserts it (evicting the least recently
	// used entry when full), so Misses also counts compilations.
	Hits, Misses uint64
	// Invalidations counts the subset of Misses caused by mutation: the
	// template was cached, but compiled at an older snapshot epoch, so
	// this lookup recompiled it against the current snapshot. (A
	// label-alphabet-growing Apply flushes the cache wholesale instead;
	// that shows up as Size dropping to zero and plain Misses as hot
	// templates refill it.)
	Invalidations uint64
	// WarmerRecompiles counts recompilations performed by the background
	// plan warmer (see DB.SetPlanWarmCount) — epoch-stale entries brought
	// current off the reader path. They are not Misses: no query paid for
	// them.
	WarmerRecompiles uint64
	// Size is the number of plans currently cached; Capacity the bound.
	Size, Capacity int
}

// planCache is the bounded LRU. Plans are immutable after compilation
// (their lazy selectivity tier is internally synchronized), so one entry
// may serve concurrent queries; the mutex guards only the map and the
// recency list.
//
// Entries are stamped with the snapshot epoch they were compiled at. A
// plan binds everything epoch-dependent — interned labels, Aux-bound
// semantics, the unique personalized match, selectivity — so a hit
// requires the entry's epoch to equal the querying snapshot's; stale
// entries are recompiled in place (per-snapshot invalidation). An Apply
// that grows the label alphabet flushes the whole cache instead (see
// mutate.go).
type planCache struct {
	mu            sync.Mutex
	capacity      int
	ll            list.List // front = most recently used; values are *planEntry
	m             map[string]*list.Element
	hits, misses  uint64
	invalidations uint64
	warmed        uint64

	// minEpoch is the floor set by flush (and raised by raiseMinEpoch on
	// a non-flushing compaction): entries compiled at older epochs are
	// never (re)inserted, so a reader that pinned a pre-compaction
	// snapshot cannot re-pin the replaced base into the LRU after it was
	// dropped.
	minEpoch uint64
}

type planEntry struct {
	key   string
	q     *Pattern // retained so the warmer can recompile without a reader
	pl    *plan.Plan
	epoch uint64
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{capacity: capacity, m: make(map[string]*list.Element)}
	c.ll.Init()
	return c
}

// lookup returns the compiled plan for q at the given snapshot epoch,
// compiling and inserting it on a miss. A cached entry compiled at an
// older epoch counts as an invalidation: it is recompiled against aux
// (the querying snapshot's) and replaced. hit reports whether a
// current-epoch plan was already cached.
func (c *planCache) lookup(aux *graph.Aux, epoch uint64, q *Pattern) (pl *plan.Plan, hit bool, err error) {
	if q == nil {
		return nil, false, fmt.Errorf("rbq: nil pattern")
	}
	key := q.String() // cached on the pattern: no render, no allocation
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*planEntry)
		if e.epoch == epoch {
			c.ll.MoveToFront(el)
			c.hits++
			pl = e.pl
			c.mu.Unlock()
			return pl, true, nil
		}
		if e.epoch < epoch {
			// Only a genuinely stale entry counts as a mutation-caused
			// invalidation; finding one compiled at a NEWER epoch (a
			// racing reader of a fresher snapshot got there first) is a
			// plain miss for this older-snapshot query.
			c.invalidations++
		}
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: concurrent misses on distinct templates
	// must not serialize behind one compilation.
	pl, err = plan.New(aux, q)
	if err != nil {
		return nil, false, fmt.Errorf("rbq: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*planEntry)
		if e.epoch == epoch {
			// Another goroutine compiled the same template at this epoch
			// first; share its plan so concurrent evaluations converge.
			c.ll.MoveToFront(el)
			return e.pl, false, nil
		}
		// The entry is stale (or was compiled at a newer epoch by a
		// racing reader of a fresher snapshot — equally unusable here):
		// hand this query its own consistent plan and let the entry
		// carry the newer of the two compilations.
		if e.epoch < epoch {
			e.pl, e.epoch = pl, epoch
			c.ll.MoveToFront(el)
		}
		return pl, false, nil
	}
	if epoch < c.minEpoch {
		// A flush ran while this plan compiled (its snapshot was
		// replaced): serve the query its consistent plan, but do not
		// cache it — caching would re-pin the replaced snapshot.
		return pl, false, nil
	}
	c.m[key] = c.ll.PushFront(&planEntry{key: key, q: q, pl: pl, epoch: epoch})
	c.evictLocked()
	return pl, false, nil
}

// flush empties the cache; mutate.go calls it when an Apply grows the
// label alphabet (compiled plans resolve absent labels to sentinels,
// which a new label can stale across every template at once), and on
// compaction when the warmer is disabled (stale entries are unservable
// anyway under epoch keying, but each pins its snapshot — after a
// compaction that is the entire replaced base CSR + Aux, which must not
// sit in the LRU until eviction). Dropped entries are not counted as
// invalidations — that counter tracks recompiles actually performed (a
// subset of Misses), and a flushed template that is never queried again
// costs nothing. In-flight evaluations of dropped plans run to
// completion — plans are immutable and self-contained.
// minEpoch is the epoch of the snapshot being published with the
// flush; see planCache.minEpoch.
func (c *planCache) flush(minEpoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
	c.minEpoch = minEpoch
}

// raiseMinEpoch is a compaction handoff without the wholesale flush:
// entries stay cached (the warmer brings the hottest current; a reader
// recompiles the rest on demand), but nothing compiled before the
// compaction can be (re)inserted. Used when the label alphabet did not
// change, so stale plans are merely epoch-stale, not semantically wrong.
func (c *planCache) raiseMinEpoch(minEpoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if minEpoch > c.minEpoch {
		c.minEpoch = minEpoch
	}
}

// warm recompiles up to n of the most recently used epoch-stale entries
// against aux (the snapshot published at epoch), off any reader's path.
// When evictStale is set — the compaction handoff, where stale plans pin
// the entire replaced base — the stale entries beyond the hottest n are
// dropped instead of left to age out. Recompilation happens outside the
// lock; an entry is only replaced if it is still present, still older
// than epoch, and epoch has not itself been flushed past. Returns the
// number of entries brought current.
func (c *planCache) warm(aux *graph.Aux, epoch uint64, n int, evictStale bool) int {
	type target struct {
		key string
		q   *Pattern
	}
	var targets []target
	c.mu.Lock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*planEntry); e.epoch < epoch {
			if len(targets) < n {
				targets = append(targets, target{e.key, e.q})
			} else if evictStale {
				c.ll.Remove(el)
				delete(c.m, e.key)
			}
		}
		el = next
	}
	c.mu.Unlock()

	recompiled := 0
	for _, t := range targets {
		pl, err := plan.New(aux, t.q)
		if err != nil {
			continue // the next reader will surface the error
		}
		c.mu.Lock()
		if el, ok := c.m[t.key]; ok {
			e := el.Value.(*planEntry)
			// Do not MoveToFront: a background recompile is not a use and
			// must not perturb the recency order readers established.
			if e.epoch < epoch && epoch >= c.minEpoch {
				e.pl, e.epoch = pl, epoch
				c.warmed++
				recompiled++
			}
		}
		c.mu.Unlock()
	}
	return recompiled
}

func (c *planCache) evictLocked() {
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations,
		WarmerRecompiles: c.warmed,
		Size:             c.ll.Len(), Capacity: c.capacity,
	}
}

func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *planCache) setCapacity(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	c.evictLocked()
}

// PlanCacheStats returns the DB's plan-cache counters: how many Query
// calls found their template compiled (hits) versus compiled it (misses),
// and the cache occupancy. The same outcome is reported per query in
// QueryStats.PlanCacheHit when Request.WantStats is set.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.stats() }

// SetPlanCacheCapacity bounds the plan cache to n compiled templates
// (minimum 1; the default is DefaultPlanCacheCapacity), evicting the
// least recently used entries if it already holds more. Safe to call
// concurrently with queries; in-flight evaluations of an evicted plan
// run to completion.
func (db *DB) SetPlanCacheCapacity(n int) { db.plans.setCapacity(n) }
