package rbq

// The background plan-cache warmer: every publish (Apply or compaction)
// epoch-stales whatever the plan cache holds, and without help the first
// reader of each hot template pays the recompilation. The warmer moves
// that cost off the reader path — after a publish it recompiles the most
// recently used stale templates against the new snapshot in a background
// goroutine, so steady-state readers keep hitting.
//
// One goroutine per DB, started lazily and exiting when idle. Publishes
// that land while a warm pass is running coalesce into a single pending
// request (latest snapshot wins; the compact flag sticks): warming is
// best-effort freshness, not a queue of obligations.

import (
	"sync"

	"rbq/internal/delta"
)

// DefaultPlanWarmCount is the number of epoch-stale templates the
// background warmer recompiles after each publish; see
// DB.SetPlanWarmCount.
const DefaultPlanWarmCount = 16

// warmRequest is one coalesced unit of warmer work: bring the hottest
// stale templates current against snap. compact marks a compaction
// handoff — stale entries beyond the warmed set are evicted, because
// each pins the entire replaced base CSR + Aux.
type warmRequest struct {
	snap    *delta.Snapshot
	compact bool
}

// warmer is the per-DB warmer state, guarded by its own mutex: the
// publish path (holding db.mu) only enqueues, and the warm goroutine
// never takes db.mu, so warming can never block or deadlock mutations.
type warmer struct {
	mu      sync.Mutex
	n       int          // templates per pass; <= 0 disables the warmer
	pending *warmRequest // coalesced next pass, nil when none
	active  bool         // a warm goroutine is running
	wg      sync.WaitGroup
}

// count returns the configured per-pass template count.
func (w *warmer) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// scheduleWarm hands the just-published snapshot to the warmer. Called
// with db.mu held; cheap and allocation-free when the warmer is disabled
// or the cache is empty (the Apply hot path must not pay for it).
func (db *DB) scheduleWarm(snap *delta.Snapshot, compact bool) {
	w := &db.warm
	w.mu.Lock()
	if w.n <= 0 || db.plans.size() == 0 {
		w.mu.Unlock()
		return
	}
	if w.pending != nil {
		// Coalesce: the newer snapshot supersedes the queued one, and a
		// pending compaction handoff must not be forgotten.
		w.pending.snap = snap
		w.pending.compact = w.pending.compact || compact
		w.mu.Unlock()
		return
	}
	w.pending = &warmRequest{snap: snap, compact: compact}
	if !w.active {
		w.active = true
		w.wg.Add(1)
		go db.warmLoop()
	}
	w.mu.Unlock()
}

// warmLoop drains pending warm requests, then exits. It reads only the
// snapshot and the plan cache — never db.mu — so it runs concurrently
// with queries, Applies and Close alike.
func (db *DB) warmLoop() {
	w := &db.warm
	defer w.wg.Done()
	for {
		w.mu.Lock()
		req := w.pending
		w.pending = nil
		if req == nil {
			w.active = false
			w.mu.Unlock()
			return
		}
		n := w.n
		w.mu.Unlock()
		db.plans.warm(req.snap.Aux(), req.snap.Epoch(), n, req.compact)
	}
}

// waitWarm blocks until the warmer goes idle (tests use it to observe
// warmed state deterministically). Callers must ensure no concurrent
// publishes keep refilling the queue.
func (db *DB) waitWarm() { db.warm.wg.Wait() }

// SetPlanWarmCount sets how many of the most recently used epoch-stale
// plan templates the background warmer recompiles after each Apply or
// compaction (the default is DefaultPlanWarmCount; n <= 0 disables the
// warmer). With the warmer disabled, compaction falls back to flushing
// the plan cache wholesale — stale entries pin the replaced base and
// nothing would refresh them off the reader path.
func (db *DB) SetPlanWarmCount(n int) {
	db.warm.mu.Lock()
	defer db.warm.mu.Unlock()
	db.warm.n = n
}
