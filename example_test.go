package rbq_test

// Runnable godoc examples for the public API. Each doubles as a test: the
// output is verified.

import (
	"fmt"

	"rbq"
)

// socialGraph builds the Fig. 1 motif: Michael knows a cycling club (CC)
// and a hiking group (HG); two cycling lovers (CL) are known to both.
func socialGraph() *rbq.Graph {
	b := rbq.NewGraphBuilder(6, 6)
	michael := b.AddNode("Michael")
	cc := b.AddNode("CC")
	hg := b.AddNode("HG")
	cl1 := b.AddNode("CL")
	cl2 := b.AddNode("CL")
	b.AddEdge(michael, cc)
	b.AddEdge(michael, hg)
	b.AddEdge(cc, cl1)
	b.AddEdge(cc, cl2)
	b.AddEdge(hg, cl1)
	b.AddEdge(hg, cl2)
	b.AddNode("X") // padding so a 0.99 budget covers the whole motif
	return b.Build()
}

func ExampleDB_Simulation() {
	db := rbq.NewDB(socialGraph())
	q, _ := rbq.ParsePattern(`
		node 0 Michael*
		node 1 CC
		node 2 HG
		node 3 CL!
		edge 0 1
		edge 0 2
		edge 1 3
		edge 2 3
	`)
	res, _ := db.Simulation(q, 0.99)
	fmt.Println("matches:", res.Matches)
	// Output: matches: [3 4]
}

func ExampleDB_SimulationExact() {
	db := rbq.NewDB(socialGraph())
	q, _ := rbq.ParsePattern("node 0 Michael*\nnode 1 CC!\nedge 0 1\n")
	exact, _ := db.SimulationExact(q)
	fmt.Println("exact:", exact)
	// Output: exact: [1]
}

func ExampleMatchAccuracy() {
	exact := []rbq.NodeID{1, 2, 3}
	approx := []rbq.NodeID{2, 3}
	acc := rbq.MatchAccuracy(exact, approx)
	fmt.Printf("P=%.2f R=%.2f F=%.2f\n", acc.Precision, acc.Recall, acc.F)
	// Output: P=1.00 R=0.67 F=0.80
}

func ExampleReachOracle_Reach() {
	b := rbq.NewGraphBuilder(4, 3)
	for i := 0; i < 4; i++ {
		b.AddNode("n")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	db := rbq.NewDB(b.Build())
	oracle := db.BuildReachOracle(0.9)
	fmt.Println(oracle.Reach(0, 3).Answer, oracle.Reach(3, 0).Answer)
	// Output: true false
}

func ExampleDB_SimulationUnanchored() {
	// Two disjoint A->B motifs: no unique personalized node exists, so the
	// unanchored engine splits the budget across both A candidates.
	b := rbq.NewGraphBuilder(4, 2)
	a1 := b.AddNode("A")
	b1 := b.AddNode("B")
	a2 := b.AddNode("A")
	b2 := b.AddNode("B")
	b.AddEdge(a1, b1)
	b.AddEdge(a2, b2)
	db := rbq.NewDB(b.Build())

	q, _ := rbq.ParsePattern("node 0 A*\nnode 1 B!\nedge 0 1\n")
	res := db.SimulationUnanchored(q, 1.0)
	fmt.Println("matches:", res.Matches, "anchors:", res.Evaluated)
	// Output: matches: [1 3] anchors: 2
}

func ExamplePattern_String() {
	pb := rbq.NewPatternBuilder()
	m := pb.AddNode("Michael")
	cl := pb.AddNode("CL")
	pb.AddEdge(m, cl)
	pb.SetPersonalized(m)
	pb.SetOutput(cl)
	q := pb.MustBuild()
	fmt.Print(q)
	// Output:
	// node 0 Michael*
	// node 1 CL!
	// edge 0 1
}
