//go:build !race
// +build !race

package rbq

import (
	"context"
	"runtime"
	"testing"

	"rbq/internal/gen"
	"rbq/internal/graph"
)

// TestSimulationAtAllocBudget: a pooled resource-bounded query on a warm
// DB stays within a small fixed allocation budget — the result slice plus
// bookkeeping — regardless of graph size. This is the steady state the
// batch APIs run in under heavy traffic.
func TestSimulationAtAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	run := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the aux scratch pool
	}
	// The budget tolerates the result slice and the occasional pool refill
	// after a GC; the seed implementation allocated >100 times per query.
	if avg := testing.AllocsPerRun(200, run); avg > 8 {
		t.Fatalf("pooled SimulationAt allocates %.1f times per run, want ≤ 8", avg)
	}
}

// TestPreparedRunAtAllocBudget: the prepared path must allocate no more
// than the one-shot path it replaces — preparation hoists work out of
// the per-query hot path, it must never add any back — and stays within
// the same absolute budget.
func TestPreparedRunAtAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	oneShot := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	prepared := func() {
		if _, err := pq.RunAt(vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		oneShot()
		prepared()
	}
	oneShotAvg := testing.AllocsPerRun(200, oneShot)
	preparedAvg := testing.AllocsPerRun(200, prepared)
	if preparedAvg > oneShotAvg {
		t.Fatalf("PreparedQuery.RunAt allocates %.1f times per run, one-shot SimulationAt %.1f — prepared must not allocate more", preparedAvg, oneShotAvg)
	}
	if preparedAvg > 8 {
		t.Fatalf("PreparedQuery.RunAt allocates %.1f times per run, want ≤ 8", preparedAvg)
	}
}

// TestQueryCacheHitAllocBudget: DB.Query on a warm plan cache — the
// request-layer hot path — must allocate no more than the legacy
// SimulationAt wrapper it subsumes (which itself routes through the same
// core), and stay within the same absolute ≤8 budget. This pins down
// that the request layer (validation, cache probe, context plumbing,
// Result assembly) added no per-query allocations.
func TestQueryCacheHitAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	ctx := context.Background()
	req := Request{Anchor: &vp, Alpha: 0.001}
	query := func() {
		if _, err := db.Query(ctx, q, req); err != nil {
			t.Fatal(err)
		}
	}
	legacy := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		query() // first call takes the compile miss; the rest must hit
		legacy()
	}
	queryAvg := testing.AllocsPerRun(200, query)
	legacyAvg := testing.AllocsPerRun(200, legacy)
	if queryAvg > legacyAvg {
		t.Fatalf("DB.Query allocates %.1f times per run, SimulationAt %.1f — the request layer must not add allocations", queryAvg, legacyAvg)
	}
	if queryAvg > 8 {
		t.Fatalf("cache-hit DB.Query allocates %.1f times per run, want ≤ 8", queryAvg)
	}
}

// TestParallelUnanchoredAllocBudget: the speculative-wave path may buy
// its pool — the wave bookkeeping, the worker goroutines, the per-worker
// scratch — but the per-query steady-state overhead over the serial path
// must stay small and fixed; and the Parallelism = 0 serial path must
// allocate exactly like the legacy unanchored wrapper it always was
// (provably unchanged: same core, same counts).
func TestParallelUnanchoredAllocBudget(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	g := gen.Random(gen.GraphConfig{Nodes: 3000, Edges: 9000, Seed: 7, PowerLaw: true})
	db := NewDB(g)
	q := gen.PatternAt(g, 101, gen.PatternConfig{Nodes: 4, Edges: 6, Seed: 3})
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	ctx := context.Background()
	mk := func(p int) func() {
		req := Request{Mode: Unanchored, Alpha: 0.02, Parallelism: p}
		return func() {
			if _, err := db.Query(ctx, q, req); err != nil {
				t.Fatal(err)
			}
		}
	}
	serial, parallel := mk(0), mk(4)
	legacy := func() { db.SimulationUnanchored(q, 0.02) }
	for i := 0; i < 5; i++ {
		serial()
		parallel()
		legacy()
	}
	serialAvg := testing.AllocsPerRun(100, serial)
	parallelAvg := testing.AllocsPerRun(100, parallel)
	legacyAvg := testing.AllocsPerRun(100, legacy)
	if serialAvg > legacyAvg {
		t.Fatalf("serial unanchored Query allocates %.1f times per run, legacy wrapper %.1f — Parallelism=0 must be the unchanged serial path", serialAvg, legacyAvg)
	}
	if parallelAvg > serialAvg+64 {
		t.Fatalf("parallel unanchored Query allocates %.1f times per run, serial %.1f — per-query pool overhead must stay ≤ 64", parallelAvg, serialAvg)
	}
}

// TestQueryBatchShardedAllocBudget: sharding a batch across workers must
// cost a fixed pool overhead, not per-item allocations.
func TestQueryBatchShardedAllocBudget(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	qs := make([]AnchoredQuery, 32)
	for i := range qs {
		qs[i] = AnchoredQuery{Q: q, At: vp}
	}
	ctx := context.Background()
	req := Request{Alpha: 0.001}
	mk := func(workers int) func() {
		return func() {
			if _, err := db.QueryBatch(ctx, qs, req, workers); err != nil {
				t.Fatal(err)
			}
		}
	}
	serial, sharded := mk(1), mk(4)
	for i := 0; i < 5; i++ {
		serial()
		sharded()
	}
	serialAvg := testing.AllocsPerRun(100, serial)
	shardedAvg := testing.AllocsPerRun(100, sharded)
	if shardedAvg > serialAvg+32 {
		t.Fatalf("sharded QueryBatch allocates %.1f times per run, serial %.1f — pool overhead must stay ≤ 32", shardedAvg, serialAvg)
	}
}

// TestQueryTraceAllocBudget: the observability layer must be free when
// off and bounded when on. WantTrace=false must add zero allocations
// over the legacy path (every engine touch point is a nil check, like
// the interrupt probes), and WantTrace=true buys its span tree within a
// fixed budget — the tree is per-phase aggregates, not per-item events.
func TestQueryTraceAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	ctx := context.Background()
	mk := func(trace bool) func() {
		req := Request{Anchor: &vp, Alpha: 0.001, WantTrace: trace}
		return func() {
			if _, err := db.Query(ctx, q, req); err != nil {
				t.Fatal(err)
			}
		}
	}
	off, on := mk(false), mk(true)
	legacy := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		off()
		on()
		legacy()
	}
	offAvg := testing.AllocsPerRun(200, off)
	legacyAvg := testing.AllocsPerRun(200, legacy)
	onAvg := testing.AllocsPerRun(200, on)
	if offAvg > legacyAvg {
		t.Fatalf("WantTrace=false Query allocates %.1f times per run, legacy %.1f — trace-off must add zero allocations", offAvg, legacyAvg)
	}
	if onAvg > offAvg+128 {
		t.Fatalf("WantTrace=true Query allocates %.1f times per run, trace-off %.1f — the span tree must stay within a fixed budget", onAvg, offAvg)
	}
}

// TestSubgraphAtAllocBudget is the RBSub counterpart.
func TestSubgraphAtAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	run := func() {
		if _, err := db.SubgraphAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg > 8 {
		t.Fatalf("pooled SubgraphAt allocates %.1f times per run, want ≤ 8", avg)
	}
}
