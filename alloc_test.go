//go:build !race
// +build !race

package rbq

import (
	"context"
	"testing"

	"rbq/internal/gen"
	"rbq/internal/graph"
)

// TestSimulationAtAllocBudget: a pooled resource-bounded query on a warm
// DB stays within a small fixed allocation budget — the result slice plus
// bookkeeping — regardless of graph size. This is the steady state the
// batch APIs run in under heavy traffic.
func TestSimulationAtAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	run := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the aux scratch pool
	}
	// The budget tolerates the result slice and the occasional pool refill
	// after a GC; the seed implementation allocated >100 times per query.
	if avg := testing.AllocsPerRun(200, run); avg > 8 {
		t.Fatalf("pooled SimulationAt allocates %.1f times per run, want ≤ 8", avg)
	}
}

// TestPreparedRunAtAllocBudget: the prepared path must allocate no more
// than the one-shot path it replaces — preparation hoists work out of
// the per-query hot path, it must never add any back — and stays within
// the same absolute budget.
func TestPreparedRunAtAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	oneShot := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	prepared := func() {
		if _, err := pq.RunAt(vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		oneShot()
		prepared()
	}
	oneShotAvg := testing.AllocsPerRun(200, oneShot)
	preparedAvg := testing.AllocsPerRun(200, prepared)
	if preparedAvg > oneShotAvg {
		t.Fatalf("PreparedQuery.RunAt allocates %.1f times per run, one-shot SimulationAt %.1f — prepared must not allocate more", preparedAvg, oneShotAvg)
	}
	if preparedAvg > 8 {
		t.Fatalf("PreparedQuery.RunAt allocates %.1f times per run, want ≤ 8", preparedAvg)
	}
}

// TestQueryCacheHitAllocBudget: DB.Query on a warm plan cache — the
// request-layer hot path — must allocate no more than the legacy
// SimulationAt wrapper it subsumes (which itself routes through the same
// core), and stay within the same absolute ≤8 budget. This pins down
// that the request layer (validation, cache probe, context plumbing,
// Result assembly) added no per-query allocations.
func TestQueryCacheHitAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	ctx := context.Background()
	req := Request{Anchor: &vp, Alpha: 0.001}
	query := func() {
		if _, err := db.Query(ctx, q, req); err != nil {
			t.Fatal(err)
		}
	}
	legacy := func() {
		if _, err := db.SimulationAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		query() // first call takes the compile miss; the rest must hit
		legacy()
	}
	queryAvg := testing.AllocsPerRun(200, query)
	legacyAvg := testing.AllocsPerRun(200, legacy)
	if queryAvg > legacyAvg {
		t.Fatalf("DB.Query allocates %.1f times per run, SimulationAt %.1f — the request layer must not add allocations", queryAvg, legacyAvg)
	}
	if queryAvg > 8 {
		t.Fatalf("cache-hit DB.Query allocates %.1f times per run, want ≤ 8", queryAvg)
	}
}

// TestSubgraphAtAllocBudget is the RBSub counterpart.
func TestSubgraphAtAllocBudget(t *testing.T) {
	g := YoutubeLike(10_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	run := func() {
		if _, err := db.SubgraphAt(q, vp, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg > 8 {
		t.Fatalf("pooled SubgraphAt allocates %.1f times per run, want ≤ 8", avg)
	}
}
