package rbq

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"rbq/internal/gen"
	"rbq/internal/graph"
)

// parallelFixture builds a DB over a generated graph plus a pattern
// whose personalized label is NOT unique — so Unanchored mode is
// meaningful and the anchored modes pin explicitly.
func parallelFixture(t *testing.T, seed int64) (*DB, *Pattern, []NodeID) {
	t.Helper()
	g := gen.Random(gen.GraphConfig{Nodes: 1200, Edges: 3600, Seed: seed, PowerLaw: true})
	q := gen.PatternAt(g, graph.NodeID(37*seed%700), gen.PatternConfig{Nodes: 4, Edges: 6, Seed: seed})
	if q == nil {
		t.Fatal("no pattern")
	}
	l := g.LabelIDOf(q.Label(q.Personalized()))
	pins := g.NodesWithLabel(l)
	if len(pins) < 4 {
		t.Fatalf("only %d pins", len(pins))
	}
	return NewDB(g), q, pins
}

// The facade-level property test: for every semantics × mode, answers
// with Parallelism ∈ {1,2,4,8} must be bit-for-bit the Parallelism = 0
// answer — with and without a live overlay delta sitting on the
// snapshot.
func TestParallelQueryBitForBitEqualsSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ctx := context.Background()
	for _, seed := range []int64{3, 8} {
		db, q, pins := parallelFixture(t, seed)
		db.SetCompactThreshold(1 << 30) // keep the overlay live once applied
		for _, overlay := range []bool{false, true} {
			if overlay {
				// A live delta: new nodes and edges layered over the base,
				// not compacted, so queries run through the overlay graph.
				ops := []Op{AddNode(db.Graph().Label(pins[0]))}
				for i := 0; i < 8; i++ {
					ops = append(ops, AddEdge(pins[i%len(pins)], NodeID(i*13%db.Graph().NumNodes())))
				}
				if err := db.Apply(ops); err != nil {
					t.Fatalf("Apply: %v", err)
				}
				if db.MutationStats().LiveDeltaOps == 0 {
					t.Fatal("overlay did not stay live")
				}
			}
			reqs := map[string]Request{
				"sim/bounded":    {Alpha: 0.05, Anchor: Pin(pins[0])},
				"sim/exact":      {Mode: Exact, Anchor: Pin(pins[1])},
				"sim/unanchored": {Mode: Unanchored, Alpha: 0.05},
				"sub/bounded":    {Semantics: Subgraph, Alpha: 0.05, Anchor: Pin(pins[0])},
				"sub/exact":      {Semantics: Subgraph, Mode: Exact, MaxSteps: 5000, Anchor: Pin(pins[1])},
				"sub/unanchored": {Semantics: Subgraph, Mode: Unanchored, Alpha: 0.05, MaxSteps: 2000},
				"sim/unanch-even": {Mode: Unanchored, Alpha: 0.2, Split: SplitEven},
			}
			for name, req := range reqs {
				want, err := db.Query(ctx, q, req)
				if err != nil {
					t.Fatalf("%s serial: %v", name, err)
				}
				for _, p := range []int{1, 2, 4, 8} {
					r := req
					r.Parallelism = p
					got, err := db.Query(ctx, q, r)
					if err != nil {
						t.Fatalf("%s P=%d: %v", name, p, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("seed=%d overlay=%v %s P=%d:\n got %+v\nwant %+v",
							seed, overlay, name, p, got, want)
					}
				}
			}
		}
	}
}

// QueryBatch sharded across workers must equal the one-worker batch,
// result slot for result slot, on both the DB and the prepared handle.
func TestQueryBatchShardedEqualsSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ctx := context.Background()
	db, q, pins := parallelFixture(t, 5)
	var qs []AnchoredQuery
	for i := 0; i < 64; i++ {
		qs = append(qs, AnchoredQuery{Q: q, At: pins[i%len(pins)]})
	}
	req := Request{Alpha: 0.03}
	want, err := db.QueryBatch(ctx, qs, req, 1)
	if err != nil {
		t.Fatalf("serial batch: %v", err)
	}
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var batchPins []NodeID
	for _, item := range qs {
		batchPins = append(batchPins, item.At)
	}
	wantP, err := pq.QueryBatch(ctx, batchPins, req, 1)
	if err != nil {
		t.Fatalf("serial prepared batch: %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := db.QueryBatch(ctx, qs, req, workers)
		if err != nil {
			t.Fatalf("W=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("DB.QueryBatch W=%d diverges from serial", workers)
		}
		gotP, err := pq.QueryBatch(ctx, batchPins, req, workers)
		if err != nil {
			t.Fatalf("prepared W=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotP, wantP) {
			t.Errorf("PreparedQuery.QueryBatch W=%d diverges from serial", workers)
		}
	}
}

// The race hammer: parallel queries and sharded batches racing Apply,
// Compact and Close on a persistent DB. Run under -race in CI (the
// -short suite includes it); correctness assertions are deliberately
// weak — the test exists to give the race detector interleavings.
func TestParallelRaceHammer(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	g := gen.Random(gen.GraphConfig{Nodes: 400, Edges: 1200, Seed: 21, PowerLaw: true})
	q := gen.PatternAt(g, 50, gen.PatternConfig{Nodes: 4, Edges: 6, Seed: 2})
	if q == nil {
		t.Fatal("no pattern")
	}
	db, err := OpenDB(t.TempDir(), OpenOptions{Bootstrap: g})
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	db.SetCompactThreshold(64)
	l := g.LabelIDOf(q.Label(q.Personalized()))
	pins := g.NodesWithLabel(l)
	if len(pins) == 0 {
		t.Fatal("no pins")
	}
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // parallel unanchored queries
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := Request{Mode: Unanchored, Alpha: 0.05, Parallelism: 2 + w}
				if _, err := db.Query(ctx, q, req); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // sharded batches
		defer wg.Done()
		qs := make([]AnchoredQuery, 16)
		for i := range qs {
			qs[i] = AnchoredQuery{Q: q, At: pins[i%len(pins)]}
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.QueryBatch(ctx, qs, Request{Alpha: 0.05}, 4); err != nil {
				t.Errorf("QueryBatch: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // mutator: Apply churns, Compact races the readers
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := db.Apply([]Op{AddEdge(pins[i%len(pins)], NodeID(i%g.NumNodes()))})
			if err == nil && i%7 == 0 {
				err = db.Compact()
			}
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("mutate: %v", err)
				return
			}
		}
	}()
	time.Sleep(150 * time.Millisecond)
	// Close mid-flight: queries keep answering from the last published
	// snapshot; mutations start failing with ErrClosed.
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// Cancellation of a parallel query: a pre-canceled context returns
// ctx.Err() with a zero Result (no worker claims anything), and a
// context canceled mid-flight surfaces promptly. The quantitative
// bounds — ≤ one claim per worker at the pool, ≤ one interrupt stride
// inside an engine run — are pinned by internal/exec and the engine
// tests; this covers the request-layer wiring end to end.
func TestParallelQueryCancellation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	db, q, _ := parallelFixture(t, 13)
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := db.Query(pre, q, Request{Mode: Unanchored, Alpha: 1.0, Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(res, Result{}) {
		t.Fatalf("pre-canceled: non-zero result %+v", res)
	}
	for _, p := range []int{0, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		_, err := db.Query(ctx, q, Request{Mode: Unanchored, Alpha: 1.0, Parallelism: p})
		cancel()
		// The tiny deadline may or may not fire before the query ends;
		// if it fired, the error must be the context's.
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("P=%d: err = %v, want nil or DeadlineExceeded", p, err)
		}
	}
}
