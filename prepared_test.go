package rbq

import (
	"reflect"
	"testing"

	"rbq/internal/gen"
	"rbq/internal/graph"
)

// preparedFixture extracts a handful of guaranteed-matching patterns
// from a generated graph, returning the DB and (pattern, pin) pairs.
func preparedFixture(t *testing.T, n int) (*DB, []AnchoredQuery) {
	t.Helper()
	g := YoutubeLike(n, 1)
	var qs []AnchoredQuery
	for seed := int64(0); seed < 80 && len(qs) < 5; seed++ {
		vp := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(vp) < 2 {
			continue
		}
		q := gen.PatternAt(g, graph.NodeID(vp), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		if q == nil {
			continue
		}
		qs = append(qs, AnchoredQuery{Q: q, At: vp})
	}
	if len(qs) < 3 {
		t.Fatal("could not extract test patterns")
	}
	return NewDB(g), qs
}

// TestPreparedEquivalence: every PreparedQuery execute method returns
// bit-for-bit the same answer as its one-shot DB counterpart, across
// several generated patterns and resource ratios.
func TestPreparedEquivalence(t *testing.T) {
	db, qs := preparedFixture(t, 4000)
	for _, aq := range qs {
		pq, err := db.Prepare(aq.Q)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{0.001, 0.01, 0.1} {
			got, gotErr := pq.RunAt(aq.At, alpha)
			want, wantErr := db.SimulationAt(aq.Q, aq.At, alpha)
			if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(got, want) {
				t.Fatalf("RunAt(%d, %v) = %+v (%v), one-shot %+v (%v)", aq.At, alpha, got, gotErr, want, wantErr)
			}
			got, gotErr = pq.RunSubgraphAt(aq.At, alpha)
			want, wantErr = db.SubgraphAt(aq.Q, aq.At, alpha)
			if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(got, want) {
				t.Fatalf("RunSubgraphAt(%d, %v) mismatch: %+v vs %+v", aq.At, alpha, got, want)
			}
			ur, uw := pq.RunUnanchored(alpha), db.SimulationUnanchored(aq.Q, alpha)
			if !reflect.DeepEqual(ur, uw) {
				t.Fatalf("RunUnanchored(%v) = %+v, one-shot %+v", alpha, ur, uw)
			}
			ur, uw = pq.RunSubgraphUnanchored(alpha), db.SubgraphUnanchored(aq.Q, alpha)
			if !reflect.DeepEqual(ur, uw) {
				t.Fatalf("RunSubgraphUnanchored(%v) = %+v, one-shot %+v", alpha, ur, uw)
			}
		}
		gotM, gotErr := pq.RunExactAt(aq.At)
		wantM, wantErr := db.SimulationExactAt(aq.Q, aq.At)
		if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(gotM, wantM) {
			t.Fatalf("RunExactAt mismatch: %v vs %v", gotM, wantM)
		}
		gotS, gotOK, _ := pq.RunSubgraphExactAt(aq.At, 1_000_000)
		wantS, wantOK, _ := db.SubgraphExactAt(aq.Q, aq.At, 1_000_000)
		if gotOK != wantOK || !reflect.DeepEqual(gotS, wantS) {
			t.Fatalf("RunSubgraphExactAt mismatch: %v vs %v", gotS, wantS)
		}
	}
}

// TestPreparedRunUsesCompiledPersonalized: Run/RunExact on a pattern with
// a unique personalized label behave like Simulation/SimulationExact, and
// fail with the same error when the label is ambiguous.
func TestPreparedRunUsesCompiledPersonalized(t *testing.T) {
	g := YoutubeLike(2000, 1)
	q, g2, _, err := ExtractPattern(g, 4, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(g2)
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if vp, ok := pq.Personalized(); !ok || int(vp) < 0 {
		t.Fatalf("Personalized() = (%d, %v), want a compile-time unique match", vp, ok)
	}
	got, err1 := pq.Run(0.01)
	want, err2 := db.Simulation(q, 0.01)
	if err1 != nil || err2 != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("Run = %+v (%v), Simulation = %+v (%v)", got, err1, want, err2)
	}
	gotE, _ := pq.RunExact()
	wantE, _ := db.SimulationExact(q)
	if !reflect.DeepEqual(gotE, wantE) {
		t.Fatalf("RunExact = %v, SimulationExact = %v", gotE, wantE)
	}

	// An ambiguous personalized label errors identically on both paths.
	amb, _, _, err := ExtractPattern(g, 3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	dbAmb := NewDB(g) // original graph: the unique label was never installed
	pqa, err := dbAmb.Prepare(amb)
	if err != nil {
		t.Fatal(err)
	}
	_, errPrep := pqa.Run(0.01)
	_, errShot := dbAmb.Simulation(amb, 0.01)
	if errPrep == nil || errShot == nil || errPrep.Error() != errShot.Error() {
		t.Fatalf("ambiguous-label errors differ: %v vs %v", errPrep, errShot)
	}
}

// TestPreparedRunBatch: RunBatch over pins equals per-pin RunAt, with
// zero results for invalid pins.
func TestPreparedRunBatch(t *testing.T) {
	db, qs := preparedFixture(t, 3000)
	q := qs[0].Q
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	// All candidates of the personalized label, plus one invalid pin.
	l := db.Graph().LabelIDOf(q.Label(q.Personalized()))
	pins := append([]NodeID{}, db.Graph().NodesWithLabel(l)...)
	var bad NodeID
	for bad = 0; db.Graph().LabelOf(bad) == l; bad++ {
	}
	pins = append(pins, bad)
	for _, workers := range []int{1, 4} {
		got := pq.RunBatch(pins, 0.01, workers)
		if len(got) != len(pins) {
			t.Fatalf("RunBatch returned %d results for %d pins", len(got), len(pins))
		}
		for i, pin := range pins {
			want, err := pq.RunAt(pin, 0.01)
			if err != nil {
				want = PatternResult{Personalized: pin}
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("workers=%d pin %d: %+v != %+v", workers, pin, got[i], want)
			}
		}
		if got[len(got)-1].Matches != nil {
			t.Fatalf("invalid pin should yield a zero result, got %+v", got[len(got)-1])
		}
	}
}

// TestBatchSharesPreparedTemplates: SimulationBatch answers are unchanged
// by the per-distinct-pattern preparation (same template at many pins vs
// distinct templates interleaved).
func TestBatchSharesPreparedTemplates(t *testing.T) {
	db, qs := preparedFixture(t, 3000)
	// Interleave: template A, B, A, B, ... at their pins.
	var batch []AnchoredQuery
	for i := 0; i < 6; i++ {
		batch = append(batch, qs[i%2])
	}
	got := db.SimulationBatch(batch, 0.01, 3)
	for i, aq := range batch {
		want, err := db.SimulationAt(aq.Q, aq.At, 0.01)
		if err != nil {
			want = PatternResult{Personalized: aq.At}
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch[%d] = %+v, want %+v", i, got[i], want)
		}
	}
}
