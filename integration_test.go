package rbq

// Cross-module integration tests: end-to-end pipelines, metamorphic
// properties that span packages, and exhaustive checks on small graphs.

import (
	"math/rand"
	"testing"

	"rbq/internal/compress"
	"rbq/internal/gen"
	"rbq/internal/graph"
	"rbq/internal/landmark"
	"rbq/internal/pattern"
	"rbq/internal/rbreach"
	"rbq/internal/reach"
	"rbq/internal/simulation"
	"rbq/internal/subiso"
)

func randomSmall(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('a' + rng.Intn(labels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func randomSmallPattern(rng *rand.Rand, labels int) *pattern.Pattern {
	for {
		b := pattern.NewBuilder()
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			b.AddNode(string(rune('a' + rng.Intn(labels))))
		}
		for i := 1; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.AddEdge(pattern.NodeID(i-1), pattern.NodeID(i))
			} else {
				b.AddEdge(pattern.NodeID(i), pattern.NodeID(i-1))
			}
		}
		b.SetPersonalized(0).SetOutput(pattern.NodeID(n - 1))
		if p, err := b.Build(); err == nil {
			return p
		}
	}
}

// addRandomEdge returns a copy of g with one extra random edge.
func addRandomEdge(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes(), g.NumEdges()+1)
	for v := 0; v < g.NumNodes(); v++ {
		b.AddNode(g.Label(graph.NodeID(v)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Out(graph.NodeID(v)) {
			b.AddEdge(graph.NodeID(v), w)
		}
	}
	b.AddEdge(graph.NodeID(rng.Intn(g.NumNodes())), graph.NodeID(rng.Intn(g.NumNodes())))
	return b.Build()
}

// Metamorphic: the maximum dual simulation relation is monotone under edge
// addition — extra data edges can only create matches, never destroy them.
func TestSimulationMonotoneUnderEdgeAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 40; i++ {
		g := randomSmall(rng, 20, 40, 2)
		p := randomSmallPattern(rng, 2)
		vp := graph.NodeID(rng.Intn(g.NumNodes()))
		if g.Label(vp) != p.Label(p.Personalized()) {
			continue
		}
		before := simulation.MatchInGraph(g, p, vp)
		g2 := addRandomEdge(g, rng)
		after := map[graph.NodeID]bool{}
		for _, v := range simulation.MatchInGraph(g2, p, vp) {
			after[v] = true
		}
		for _, v := range before {
			if !after[v] {
				t.Fatalf("iteration %d: match %d vanished after adding an edge", i, v)
			}
		}
	}
}

// Metamorphic: non-induced subgraph isomorphism is likewise monotone.
func TestSubisoMonotoneUnderEdgeAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 40; i++ {
		g := randomSmall(rng, 14, 28, 2)
		p := randomSmallPattern(rng, 2)
		vp := graph.NodeID(rng.Intn(g.NumNodes()))
		if g.Label(vp) != p.Label(p.Personalized()) {
			continue
		}
		before, ok1 := subiso.Match(g, p, vp, nil)
		g2 := addRandomEdge(g, rng)
		afterSlice, ok2 := subiso.Match(g2, p, vp, nil)
		if !ok1 || !ok2 {
			continue
		}
		after := map[graph.NodeID]bool{}
		for _, v := range afterSlice {
			after[v] = true
		}
		for _, v := range before {
			if !after[v] {
				t.Fatalf("iteration %d: embedding output %d vanished after adding an edge", i, v)
			}
		}
	}
}

// Metamorphic: reachability is monotone under edge addition, and RBReach
// must stay sound (no false positives) on both graphs.
func TestReachabilityMonotoneAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 15; i++ {
		g := randomSmall(rng, 30, 60, 1)
		g2 := addRandomEdge(g, rng)
		o1 := rbreach.New(g, landmark.BuildOptions{Alpha: 0.3})
		o2 := rbreach.New(g2, landmark.BuildOptions{Alpha: 0.3})
		for q := 0; q < 40; q++ {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if g.Reachable(u, v) && !g2.Reachable(u, v) {
				t.Fatal("BFS reachability not monotone (graph copy broken)")
			}
			if o1.Query(u, v).Answer && !g.Reachable(u, v) {
				t.Fatalf("false positive on base graph (%d,%d)", u, v)
			}
			if o2.Query(u, v).Answer && !g2.Reachable(u, v) {
				t.Fatalf("false positive on extended graph (%d,%d)", u, v)
			}
		}
	}
}

// Exhaustive all-pairs check of the whole reachability pipeline on small
// graphs: condensation + index + RBReach vs plain and bidirectional BFS.
func TestReachPipelineExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 8; i++ {
		g := randomSmall(rng, 18, 40, 1)
		cond := compress.Condense(g)
		oracle := rbreach.FromCondensation(cond, landmark.BuildOptions{Alpha: 1.0}, g.Size())
		opt := reach.FromCondensation(cond)
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				uu, vv := graph.NodeID(u), graph.NodeID(v)
				truth := g.Reachable(uu, vv)
				if reach.Bidirectional(g, uu, vv) != truth {
					t.Fatalf("bidirectional BFS wrong on (%d,%d)", u, v)
				}
				if opt.Query(uu, vv) != truth {
					t.Fatalf("BFSOpt wrong on (%d,%d)", u, v)
				}
				if oracle.Query(uu, vv).Answer && !truth {
					t.Fatalf("RBReach false positive on (%d,%d)", u, v)
				}
			}
		}
	}
}

// The paper's Example 2 at its stated scale (m=96 HG members, n=900 CL
// members, ~1000 nodes within 2 hops of Michael), through the public API:
// RBSim must find exactly {cl_{n-1}, cl_n} with a budget of a few dozen
// items.
func TestExample2ThroughPublicAPI(t *testing.T) {
	gb := NewGraphBuilder(1000, 1100)
	michael := gb.AddNode("Michael")
	var hgs []NodeID
	for i := 0; i < 96; i++ {
		h := gb.AddNode("HG")
		hgs = append(hgs, h)
		gb.AddEdge(michael, h)
	}
	cc1 := gb.AddNode("CC")
	cc2 := gb.AddNode("CC")
	cc3 := gb.AddNode("CC")
	gb.AddEdge(michael, cc1)
	gb.AddEdge(michael, cc2)
	gb.AddEdge(michael, cc3)
	var cls []NodeID
	for i := 0; i < 900; i++ {
		cls = append(cls, gb.AddNode("CL"))
	}
	for i := 0; i < 3; i++ {
		gb.AddEdge(cc1, cls[i])
	}
	answer1, answer2 := cls[898], cls[899]
	hgm := hgs[95]
	gb.AddEdge(cc3, answer1)
	gb.AddEdge(cc3, answer2)
	gb.AddEdge(hgm, answer1)
	gb.AddEdge(hgm, answer2)
	for i := 3; i < 898; i++ {
		gb.AddEdge(hgs[i%95], cls[i])
	}
	db := NewDB(gb.Build())

	q, err := ParsePattern(`
		node 0 Michael*
		node 1 CC
		node 2 HG
		node 3 CL!
		edge 0 1
		edge 0 2
		edge 1 3
		edge 2 3
	`)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 30.0 / float64(db.Graph().Size())
	res, err := db.Simulation(q, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 || res.Matches[0] != answer1 || res.Matches[1] != answer2 {
		t.Fatalf("matches = %v, want [%d %d] (res %+v)", res.Matches, answer1, answer2, res)
	}
	exact, err := db.SimulationExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if acc := MatchAccuracy(exact, res.Matches); acc.F != 1 {
		t.Fatalf("accuracy %+v at budget %d", acc, res.Budget)
	}
	// RBSub agrees on this workload.
	sub, err := db.Subgraph(q, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if acc := MatchAccuracy(exact, sub.Matches); acc.F != 1 {
		t.Fatalf("RBSub accuracy %+v", acc)
	}
}

// Full pattern pipeline determinism: generate, extract, reduce, match —
// twice — and compare everything observable.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() ([]NodeID, int, int) {
		g := YoutubeLike(8000, 5)
		q, g2, _, err := ExtractPattern(g, 4, 8, 9)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDB(g2)
		res, err := db.Simulation(q, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		return res.Matches, res.FragmentSize, res.Visited
	}
	m1, f1, v1 := run()
	m2, f2, v2 := run()
	if f1 != f2 || v1 != v2 || len(m1) != len(m2) {
		t.Fatalf("pipeline not deterministic: (%v,%d,%d) vs (%v,%d,%d)", m1, f1, v1, m2, f2, v2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("match sets differ across runs")
		}
	}
}

// The LM baseline and RBReach bracket the truth from below: both are
// sound (no false positives) but RBReach should answer at least as many
// reachable pairs on a shared workload.
func TestRBReachDominatesLM(t *testing.T) {
	g := gen.Random(gen.GraphConfig{Nodes: 3000, Edges: 9000, Seed: 61, PowerLaw: true})
	cond := compress.Condense(g)
	oracle := rbreach.FromCondensation(cond, landmark.BuildOptions{Alpha: 0.05}, g.Size())
	lm := landmark.BuildLM(cond.DAG, 30, 3)
	qs := gen.ReachQueries(g, 300, 17)
	rbHits, lmHits := 0, 0
	for _, q := range qs {
		if !q.Truth {
			continue
		}
		if oracle.Query(q.From, q.To).Answer {
			rbHits++
		}
		if lm.Query(cond.ComponentOf[q.From], cond.ComponentOf[q.To]) {
			lmHits++
		}
	}
	if rbHits < lmHits {
		t.Fatalf("RBReach recalled %d reachable pairs, LM %d", rbHits, lmHits)
	}
}
