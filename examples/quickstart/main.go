// Quickstart: answer a personalized graph-pattern query within bounded
// resources, end to end, on a graph small enough to read.
//
// We model the paper's running example (Fig. 1): Michael asks for cycling
// lovers (CL) known both to his LA cycling club (CC) friends and to his
// hiking group (HG) friends. The resource-bounded engine answers by
// extracting a fragment G_Q with |G_Q| ≤ α|G| instead of scanning G.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rbq"
)

func main() {
	// 1. Build the data graph.
	gb := rbq.NewGraphBuilder(16, 24)
	michael := gb.AddNode("Michael")
	var hgs, ccs, cls []rbq.NodeID
	for i := 0; i < 4; i++ {
		hgs = append(hgs, gb.AddNode("HG"))
		gb.AddEdge(michael, hgs[i])
	}
	for i := 0; i < 3; i++ {
		ccs = append(ccs, gb.AddNode("CC"))
		gb.AddEdge(michael, ccs[i])
	}
	for i := 0; i < 6; i++ {
		cls = append(cls, gb.AddNode("CL"))
	}
	// cc0 recommends three cycling lovers nobody in the hiking group knows.
	gb.AddEdge(ccs[0], cls[0])
	gb.AddEdge(ccs[0], cls[1])
	gb.AddEdge(ccs[0], cls[2])
	// cc2 and the hiker hgs[3] both know the two answers.
	gb.AddEdge(ccs[2], cls[4])
	gb.AddEdge(ccs[2], cls[5])
	gb.AddEdge(hgs[3], cls[4])
	gb.AddEdge(hgs[3], cls[5])
	g := gb.Build()

	// 2. Build the pattern: Michael* -> CC -> CL!, Michael -> HG -> CL.
	q, err := rbq.ParsePattern(`
		node 0 Michael*
		node 1 CC
		node 2 HG
		node 3 CL!
		edge 0 1
		edge 0 2
		edge 1 3
		edge 2 3
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Query with a resource budget: α = 60% of this tiny graph. Every
	// evaluation is one declarative Request — here the zero Request (a
	// resource-bounded simulation query) with only α filled in. The
	// context carries cancellation into the engine: pass a deadline and a
	// query that would overrun returns ctx.Err() instead.
	ctx := context.Background()
	db := rbq.NewDB(g)
	res, err := db.Query(ctx, q, rbq.Request{Alpha: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph |G| = %d items; budget = %d; fragment |G_Q| = %d; visited %d\n",
		g.Size(), res.Budget, res.FragmentSize, res.Visited)
	fmt.Printf("cycling lovers matching the pattern: %v\n", res.Matches)

	// 4. Compare against the exact answer: the same Request in Exact
	// mode. The pattern was compiled on the first Query and cached, so
	// this evaluation reuses the plan (see WantStats below).
	exact, err := db.Query(ctx, q, rbq.Request{Mode: rbq.Exact})
	if err != nil {
		log.Fatal(err)
	}
	acc := rbq.MatchAccuracy(exact.Matches, res.Matches)
	fmt.Printf("exact answer: %v — accuracy F = %.2f\n", exact.Matches, acc.F)

	// 5. Repeated templates: re-issuing the same pattern hits the DB's
	// plan cache, so hot templates are compiled once no matter how many
	// callers evaluate them. WantStats surfaces the cache outcome and the
	// compile/execute timing split per query.
	vp := res.Personalized // resolved at compile time, reported per query
	for _, alpha := range []float64{0.3, 0.45, 0.6} {
		r, err := db.Query(ctx, q, rbq.Request{Anchor: rbq.Pin(vp), Alpha: alpha, WantStats: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cached run at α=%.2f: budget %d -> matches %v (plan cache hit: %v)\n",
			alpha, r.Budget, r.Matches, r.Stats.PlanCacheHit)
	}
	cs := db.PlanCacheStats()
	fmt.Printf("plan cache: %d hit(s), %d miss(es) — one compilation served every query\n",
		cs.Hits, cs.Misses)
}
