// Adtargeting: approximate answers under subgraph isomorphism.
//
// The paper's introduction motivates resource-bounded querying with
// trend-driven ad placement: an advertiser looks for members embedded in a
// specific influence structure (an exact subgraph shape, not just a
// simulation), and fast approximate answers beat slow exact ones. This
// example targets members P that follow two DISTINCT influencers (I) who
// both promote the same brand hub (B) — a diamond that only subgraph
// isomorphism (RBSub) can enforce; simulation would happily map both
// pattern influencers to one data node.
//
// Run with: go run ./examples/adtargeting
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rbq"
)

func main() {
	// Build an influencer-flavored graph: a brand hub, influencers that
	// promote it, and members following influencers.
	const influencers = 60
	const members = 30_000
	rng := rand.New(rand.NewSource(2026))
	gb := rbq.NewGraphBuilder(members+influencers+1, 4*members)
	brand := gb.AddNode("B")
	var infl []rbq.NodeID
	for i := 0; i < influencers; i++ {
		v := gb.AddNode("I")
		infl = append(infl, v)
		if i%3 != 0 { // two thirds of influencers promote the brand
			gb.AddEdge(v, brand)
		}
	}
	var people []rbq.NodeID
	for i := 0; i < members; i++ {
		v := gb.AddNode("P")
		people = append(people, v)
		for j, k := 0, 1+rng.Intn(3); j < k; j++ { // follow 1-3 influencers
			gb.AddEdge(v, infl[rng.Intn(influencers)])
		}
	}
	g := gb.Build()
	db := rbq.NewDB(g)
	_ = brand

	// Pattern: P* -> I -> B!, P -> I' -> B — the targeting diamond.
	q, err := rbq.ParsePattern(`
		node 0 P*
		node 1 I
		node 2 I
		node 3 B!
		edge 0 1
		edge 0 2
		edge 1 3
		edge 2 3
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|G| = %d items; targeting diamond |Q| = (%d,%d)\n\n",
		g.Size(), q.NumNodes(), q.NumEdges())

	// Batch scan: one Request (a resource-bounded subgraph query), one
	// QueryBatch over the candidate members — the template is compiled
	// once through the plan cache and the workers share the DB's pooled
	// scratch. The context deadline bounds the whole campaign scan; an
	// overrunning batch returns the members scanned so far with ctx.Err().
	const sample = 3000
	const alpha = 0.0004 // ~ 60-item fragment per member on this graph
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	items := make([]rbq.AnchoredQuery, sample)
	for i := 0; i < sample; i++ {
		items[i] = rbq.AnchoredQuery{Q: q, At: people[i]}
	}
	start := time.Now()
	results, err := db.QueryBatch(ctx, items, rbq.Request{Semantics: rbq.Subgraph, Alpha: alpha}, 0)
	if errors.Is(err, context.DeadlineExceeded) {
		// Partial campaign: QueryBatch returned the members it finished
		// (unprocessed items are zero); report what we have.
		fmt.Println("deadline hit — reporting the members scanned so far")
	} else if err != nil {
		log.Fatal(err)
	}
	matched, disagreements := 0, 0
	spotCheck := err == nil // skip the exact baseline if the deadline already fired
	for i, res := range results {
		hit := len(res.Matches) > 0
		if hit {
			matched++
		}
		if i < 300 && spotCheck { // spot-check against the exact baseline
			exact, qerr := db.Query(ctx, q,
				rbq.Request{Semantics: rbq.Subgraph, Mode: rbq.Exact, Anchor: rbq.Pin(people[i])})
			if errors.Is(qerr, context.DeadlineExceeded) {
				// Deadline fired mid-spot-check: keep the partial report.
				spotCheck = false
				continue
			} else if qerr != nil {
				log.Fatal(qerr)
			}
			if exact.Complete && hit != (len(exact.Matches) > 0) {
				disagreements++
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("scanned %d members in %v (%.0f members/sec)\n",
		sample, elapsed.Round(time.Millisecond),
		float64(sample)/elapsed.Seconds())
	fmt.Printf("%d members satisfy the targeting diamond (%.1f%%)\n",
		matched, 100*float64(matched)/sample)
	fmt.Printf("spot-check vs exact matcher on 300 members: %d disagreement(s)\n", disagreements)
}
