// Adtargeting: approximate answers under subgraph isomorphism.
//
// The paper's introduction motivates resource-bounded querying with
// trend-driven ad placement: an advertiser looks for members embedded in a
// specific influence structure (an exact subgraph shape, not just a
// simulation), and fast approximate answers beat slow exact ones. This
// example targets members P that follow two DISTINCT influencers (I) who
// both promote the same brand hub (B) — a diamond that only subgraph
// isomorphism (RBSub) can enforce; simulation would happily map both
// pattern influencers to one data node.
//
// Run with: go run ./examples/adtargeting
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"rbq"
)

func main() {
	// Build an influencer-flavored graph: a brand hub, influencers that
	// promote it, and members following influencers.
	const influencers = 60
	const members = 30_000
	rng := rand.New(rand.NewSource(2026))
	gb := rbq.NewGraphBuilder(members+influencers+1, 4*members)
	brand := gb.AddNode("B")
	var infl []rbq.NodeID
	for i := 0; i < influencers; i++ {
		v := gb.AddNode("I")
		infl = append(infl, v)
		if i%3 != 0 { // two thirds of influencers promote the brand
			gb.AddEdge(v, brand)
		}
	}
	var people []rbq.NodeID
	for i := 0; i < members; i++ {
		v := gb.AddNode("P")
		people = append(people, v)
		for j, k := 0, 1+rng.Intn(3); j < k; j++ { // follow 1-3 influencers
			gb.AddEdge(v, infl[rng.Intn(influencers)])
		}
	}
	g := gb.Build()
	db := rbq.NewDB(g)
	_ = brand

	// Pattern: P* -> I -> B!, P -> I' -> B — the targeting diamond.
	q, err := rbq.ParsePattern(`
		node 0 P*
		node 1 I
		node 2 I
		node 3 B!
		edge 0 1
		edge 0 2
		edge 1 3
		edge 2 3
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|G| = %d items; targeting diamond |Q| = (%d,%d)\n\n",
		g.Size(), q.NumNodes(), q.NumEdges())

	// Batch scan: evaluate the diamond pinned at each candidate member,
	// with a per-query resource budget (RBSub), and verify a sample
	// against the exact matcher.
	const sample = 3000
	const alpha = 0.0004 // ~ 60-item fragment per member on this graph
	matched, disagreements := 0, 0
	start := time.Now()
	for i := 0; i < sample; i++ {
		member := people[i]
		res, err := db.SubgraphAt(q, member, alpha)
		if err != nil {
			log.Fatal(err)
		}
		hit := len(res.Matches) > 0
		if hit {
			matched++
		}
		if i < 300 { // spot-check against the exact baseline
			exact, complete, err := db.SubgraphExactAt(q, member, 0)
			if err != nil {
				log.Fatal(err)
			}
			if complete && hit != (len(exact) > 0) {
				disagreements++
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("scanned %d members in %v (%.0f members/sec)\n",
		sample, elapsed.Round(time.Millisecond),
		float64(sample)/elapsed.Seconds())
	fmt.Printf("%d members satisfy the targeting diamond (%.1f%%)\n",
		matched, 100*float64(matched)/sample)
	fmt.Printf("spot-check vs exact matcher on 300 members: %d disagreement(s)\n", disagreements)
}
