// Calibration: how small can α be? (the paper's Section 7 question)
//
// Operators must pick the resource ratio α before serving queries. This
// example builds a workload of personalized pattern queries, sweeps the
// empirical accuracy curve η(α), and then searches for the smallest α that
// still achieves 100% accuracy — automating the calibration the paper does
// by hand in Fig. 8(c). It finishes by answering a pattern that has NO
// unique personalized node with the unanchored engine.
//
// Run with: go run ./examples/calibration
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rbq"
)

func main() {
	const members = 60_000
	g := rbq.YoutubeLike(members, 17)
	fmt.Printf("graph: |G| = %d items\n", g.Size())

	// Build a 4-query workload, all pinned on the same graph copy.
	q, g2, vp, err := rbq.ExtractPattern(g, 4, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	db := rbq.NewDB(g2)
	workload := []rbq.AnchoredQuery{{Q: q, At: vp}}
	for seed := int64(10); len(workload) < 4 && seed < 60; seed++ {
		p, _, anchor, err := rbq.ExtractPattern(g2, 4, 8, seed)
		if err != nil {
			continue
		}
		// Re-pin on db's graph: the extraction used g2 itself, so the
		// anchor id is valid there.
		workload = append(workload, rbq.AnchoredQuery{Q: p, At: anchor})
	}
	fmt.Printf("workload: %d pattern queries of shape (4,8)\n\n", len(workload))

	// 1. The empirical accuracy curve. Calibration sweeps are long-running
	// offline jobs, so they take a context like every other evaluation: a
	// fired deadline stops the sweep and returns the points sampled so far.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	alphas := []float64{0.00002, 0.0001, 0.0005, 0.002, 0.01}
	fmt.Println("alpha      accuracy   mean |G_Q|")
	for _, pt := range db.SimulationCurveContext(ctx, workload, alphas) {
		fmt.Printf("%-10.5f %-10.3f %.1f\n", pt.Alpha, pt.Accuracy, pt.MeanFragment)
	}

	// 2. The smallest α achieving 100% accuracy on this workload.
	pt, ok := db.MinAlphaForAccuracy(workload, 1.0, 0.01, 8)
	if !ok {
		fmt.Println("\n100% accuracy needs α > 0.01 on this workload")
	} else {
		fmt.Printf("\nminimal α for 100%% accuracy: %.6f (mean fragment %.1f items of |G| = %d)\n",
			pt.Alpha, pt.MeanFragment, db.Graph().Size())
	}

	// 3. A pattern with no unique personalized match: "find label-L00
	// nodes that point at an L01 node" anywhere in the graph.
	pb := rbq.NewPatternBuilder()
	a := pb.AddNode("L00")
	b := pb.AddNode("L01")
	pb.AddEdge(a, b)
	pb.SetPersonalized(a)
	pb.SetOutput(a)
	motif := pb.MustBuild()
	res, err := db.Query(ctx, motif, rbq.Request{Mode: rbq.Unanchored, Alpha: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunanchored motif search: %d matches from %d anchors (of %d candidates), total |G_Q| = %d\n",
		len(res.Matches), res.Evaluated, res.Candidates, res.FragmentSize)
}
