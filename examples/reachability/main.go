// Reachability: non-localized queries within bounded resources.
//
// Michael wants to know whether he can reach the sports star Eric through
// social links (Example 1 of the paper). Reachability has no data
// locality — BFS may touch the whole graph — so the engine builds a
// hierarchical landmark index of size α|G| once, then answers every query
// by visiting at most α|G| index items, with a hard guarantee of zero
// false positives (Theorem 4(c)).
//
// Run with: go run ./examples/reachability
package main

import (
	"fmt"
	"math/rand"
	"time"

	"rbq"
)

func main() {
	const n = 80_000
	fmt.Printf("generating a %d-node web-like graph...\n", n)
	g := rbq.YahooLike(n, 9)
	db := rbq.NewDB(g)
	fmt.Printf("|G| = %d items\n\n", g.Size())

	const alpha = 0.002
	start := time.Now()
	oracle := db.BuildReachOracle(alpha)
	fmt.Printf("landmark index: α = %.3f, size %d (≤ α|G| = %d), built in %v\n\n",
		alpha, oracle.IndexSize(), int(alpha*float64(g.Size())),
		time.Since(start).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(3))
	const queries = 500
	var (
		agree, falseNeg, falsePos int
		rbTime, bfsTime           time.Duration
	)
	for i := 0; i < queries; i++ {
		u := rbq.NodeID(rng.Intn(n))
		v := rbq.NodeID(rng.Intn(n))
		start = time.Now()
		got := oracle.Reach(u, v)
		rbTime += time.Since(start)
		start = time.Now()
		truth := db.ReachExact(u, v)
		bfsTime += time.Since(start)
		switch {
		case got.Answer == truth:
			agree++
		case got.Answer && !truth:
			falsePos++
		default:
			falseNeg++
		}
	}
	fmt.Printf("%d random queries:\n", queries)
	fmt.Printf("  agreement with BFS ground truth: %d (%.1f%%)\n", agree, 100*float64(agree)/queries)
	fmt.Printf("  false positives: %d (guaranteed 0)\n", falsePos)
	fmt.Printf("  false negatives: %d (the price of the resource bound)\n", falseNeg)
	fmt.Printf("  avg time: RBReach %v vs BFS %v\n",
		(rbTime / queries).Round(time.Microsecond), (bfsTime / queries).Round(time.Microsecond))
	if falsePos > 0 {
		panic("false positive: violates Theorem 4(c)")
	}
}
