// Socialsearch: personalized social search on a 100k-node social network,
// the workload class motivating the paper (Facebook Graph Search style).
//
// A pattern query of shape (4, 8) is extracted around a random member, so
// it is guaranteed to have answers. We then sweep the resource ratio α and
// watch the resource-bounded engine (RBSim) converge to the exact answer
// while touching a tiny, bounded part of the graph — the paper's headline
// result (Fig. 8(c): 100% accuracy at α = 0.0015%).
//
// Run with: go run ./examples/socialsearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rbq"
)

func main() {
	const members = 100_000
	fmt.Printf("generating a %d-member social network...\n", members)
	g := rbq.YoutubeLike(members, 42)
	fmt.Printf("|V| = %d, |E| = %d, |G| = %d items\n", g.NumNodes(), g.NumEdges(), g.Size())

	// Extract a (4,8) pattern that is guaranteed to match; the seed member
	// gets a unique label, mirroring the paper's personalized setting.
	q, g2, vp, err := rbq.ExtractPattern(g, 4, 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	db := rbq.NewDB(g2)
	fmt.Printf("pattern anchored at member %d; |Q| = (%d, %d), diameter %d\n\n",
		vp, q.NumNodes(), q.NumEdges(), q.Diameter())

	// A serving deadline: social search answers are worthless after the
	// page renders, so every query carries a context. The deadline here
	// is deliberately far above what the sweep needs (it also runs in CI
	// on loaded machines); shrink it toward real page budgets and late
	// queries return ctx.Err() instead of holding the request thread.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	start := time.Now()
	exact, err := db.Query(ctx, q, rbq.Request{Mode: rbq.Exact})
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)
	fmt.Printf("exact baseline (MatchOpt): %d matches in %v\n\n", len(exact.Matches), exactTime.Round(time.Microsecond))

	fmt.Println("alpha      budget   |G_Q|   visited   time       accuracy")
	for _, alpha := range []float64{0.0001, 0.0005, 0.002, 0.01} {
		start = time.Now()
		res, err := db.Query(ctx, q, rbq.Request{Alpha: alpha})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		acc := rbq.MatchAccuracy(exact.Matches, res.Matches)
		fmt.Printf("%-10.4f %-8d %-7d %-9d %-10v %.2f\n",
			alpha, res.Budget, res.FragmentSize, res.Visited,
			elapsed.Round(time.Microsecond), acc.F)
	}
	cs := db.PlanCacheStats()
	fmt.Printf("\nplan cache: %d hit(s), %d miss(es) — the α sweep reused one compiled plan\n",
		cs.Hits, cs.Misses)
	fmt.Println("Note how accuracy reaches 1.00 while |G_Q| stays a vanishing")
	fmt.Println("fraction of |G| — the resource-bounded querying thesis.")
}
