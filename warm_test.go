package rbq

import (
	"context"
	"testing"
)

// warmFixture returns a DB over a random graph plus a query helper that
// runs (and caches) a single-node template for the given label, pinned
// at the first node carrying it.
func warmFixture(t *testing.T) (*DB, func(label string)) {
	t.Helper()
	g := RandomGraph(300, 800, 3, false)
	db := NewDB(g)
	ctx := context.Background()
	query := func(label string) {
		t.Helper()
		l := g.LabelIDOf(label)
		if l == -1 || len(g.NodesWithLabel(l)) == 0 {
			t.Skipf("fixture graph has no %s node", label)
		}
		pb := NewPatternBuilder()
		a := pb.AddNode(label)
		pb.SetPersonalized(a)
		pb.SetOutput(a)
		q := pb.MustBuild()
		if _, err := db.Query(ctx, q, Request{Anchor: Pin(g.NodesWithLabel(l)[0]), Alpha: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	return db, query
}

// TestPlanWarmerRecompilesAfterApply: a same-alphabet Apply epoch-stales
// the cached template; the background warmer brings it current, so the
// next reader hits instead of paying the recompilation.
func TestPlanWarmerRecompilesAfterApply(t *testing.T) {
	db, query := warmFixture(t)
	query("L00") // miss: first compile
	query("L00") // hit
	if err := db.Apply([]Op{AddNode("L00")}); err != nil {
		t.Fatal(err)
	}
	db.waitWarm()
	cs := db.PlanCacheStats()
	if cs.WarmerRecompiles != 1 || cs.Size != 1 {
		t.Fatalf("after warm: %+v, want 1 warmer recompile and the entry retained", cs)
	}
	query("L00") // must hit the warmed plan at the new epoch
	cs = db.PlanCacheStats()
	if cs.Hits != 2 || cs.Misses != 1 || cs.Invalidations != 0 {
		t.Fatalf("post-warm query was not a hit: %+v", cs)
	}
}

// TestPlanWarmerCompactionHandoff: on a compaction that does not grow
// the label alphabet the cache is no longer flushed wholesale — the
// warmer recompiles the hottest N templates and evicts the colder stale
// entries (which would otherwise pin the replaced base), so the hot
// template's next reader still hits.
func TestPlanWarmerCompactionHandoff(t *testing.T) {
	db, query := warmFixture(t)
	db.SetPlanWarmCount(1)
	query("L00")
	query("L01")
	query("L02") // most recently used — the one warm slot goes here
	if cs := db.PlanCacheStats(); cs.Size != 3 {
		t.Fatalf("fixture: %+v, want 3 cached templates", cs)
	}
	if err := db.Apply([]Op{AddNode("L00")}); err != nil {
		t.Fatal(err)
	}
	db.waitWarm()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.waitWarm()
	ms := db.MutationStats()
	if ms.Compactions != 1 || ms.Mode == "" {
		t.Fatalf("compaction did not run: %+v", ms)
	}
	cs := db.PlanCacheStats()
	if cs.Size != 1 {
		t.Fatalf("handoff: %+v, want exactly the warmed entry retained", cs)
	}
	if cs.WarmerRecompiles == 0 {
		t.Fatalf("handoff: %+v, want warmer recompiles counted", cs)
	}
	hitsBefore := cs.Hits
	query("L02") // the warmed hottest template: a hit, off the miss path
	cs = db.PlanCacheStats()
	if cs.Hits != hitsBefore+1 {
		t.Fatalf("hottest template missed after handoff: %+v", cs)
	}
	// A colder evicted template recompiles on demand and re-enters at the
	// current epoch (at or above the minEpoch floor).
	missesBefore := cs.Misses
	query("L01")
	cs = db.PlanCacheStats()
	if cs.Misses != missesBefore+1 || cs.Size != 2 {
		t.Fatalf("evicted template did not re-enter as a plain miss: %+v", cs)
	}
}

// TestPlanWarmerCoalesces: publishes that land while a warm pass could
// run coalesce; the warmer is best-effort and must never leave the
// cache inconsistent. (Counters are not asserted exactly — scheduling
// is timing-dependent — but the final state must be current.)
func TestPlanWarmerCoalesces(t *testing.T) {
	db, query := warmFixture(t)
	query("L00")
	for i := 0; i < 20; i++ {
		if err := db.Apply([]Op{AddNode("L00")}); err != nil {
			t.Fatal(err)
		}
	}
	db.waitWarm()
	// However many passes actually ran, a final wait means the cache is
	// either current (warmed) or stale (skipped passes) — and a query
	// settles it to a defined state without error.
	query("L00")
	query("L00")
	cs := db.PlanCacheStats()
	if cs.Size != 1 {
		t.Fatalf("coalesced warming corrupted the cache: %+v", cs)
	}
	if cs.Hits == 0 {
		t.Fatalf("no hits after settling queries: %+v", cs)
	}
}
