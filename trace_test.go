package rbq

import (
	"context"
	"runtime"
	"slices"
	"strings"
	"testing"

	"rbq/internal/gen"
	"rbq/internal/graph"
	"rbq/internal/obs"
	"rbq/internal/reduce"
)

// traceFixture builds the standard warm-DB fixture the alloc tests use.
func traceFixture(t *testing.T) (*DB, *Pattern, NodeID) {
	t.Helper()
	g := YoutubeLike(5_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	return db, q, vp
}

// A bounded anchored query's trace must cover the plan probe, the
// reduction (with per-round aggregates), the ball extraction and the
// exact match — and tracing must not change the answer.
func TestTraceBoundedStructure(t *testing.T) {
	db, q, vp := traceFixture(t)
	ctx := context.Background()
	plain, err := db.Query(ctx, q, Request{Anchor: &vp, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(ctx, q, Request{Anchor: &vp, Alpha: 0.01, WantTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Matches, plain.Matches) {
		t.Fatalf("tracing changed the answer: %v vs %v", res.Matches, plain.Matches)
	}
	if res.Trace == nil {
		t.Fatal("WantTrace set but Result.Trace nil")
	}
	if plain.Trace != nil {
		t.Fatal("WantTrace unset but Result.Trace non-nil")
	}
	for _, phase := range []string{obs.PhasePlan, obs.PhaseExec, obs.PhaseReduce, obs.PhaseExtract, obs.PhaseMatch} {
		if res.Trace.Find(phase) == nil {
			t.Errorf("trace missing %q span", phase)
		}
	}
	// The warm cache means the plan span records a hit.
	if v, ok := res.Trace.Find(obs.PhasePlan).Counter("cache_hit"); !ok || v != 1 {
		t.Errorf("plan span cache_hit = %d,%v, want 1", v, ok)
	}
	// Reduction rounds bridge into round child spans with a bound.
	rs := res.Trace.Find(obs.PhaseReduce)
	if rounds, ok := rs.Counter("rounds"); !ok || rounds < 1 {
		t.Fatalf("reduce span rounds = %d,%v", rounds, ok)
	}
	round := res.Trace.Find(obs.PhaseRound)
	if round == nil {
		t.Fatal("trace has no round span")
	}
	if b, ok := round.Counter("bound"); !ok || b < 2 {
		t.Errorf("round bound = %d,%v, want ≥ 2", b, ok)
	}
	if v, ok := rs.Counter("visited"); !ok || int(v) != res.Visited {
		t.Errorf("reduce visited counter = %d, Result.Visited = %d", v, res.Visited)
	}
	// The text rendering covers every phase.
	var sb strings.Builder
	res.Trace.WriteText(&sb)
	for _, phase := range []string{"plan", "exec", "reduce", "extract", "match"} {
		if !strings.Contains(sb.String(), phase) {
			t.Errorf("WriteText missing %q:\n%s", phase, sb.String())
		}
	}
}

// An unanchored query's trace covers the selectivity scan and the
// anchor-wave phase; the parallel form adds wave spans with
// accepted/discarded speculation and stays bit-for-bit serial-equal.
func TestTraceUnanchoredStructure(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	g := gen.Random(gen.GraphConfig{Nodes: 3000, Edges: 9000, Seed: 7, PowerLaw: true})
	db := NewDB(g)
	q := gen.PatternAt(g, 101, gen.PatternConfig{Nodes: 4, Edges: 6, Seed: 3})
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}
	ctx := context.Background()
	serial, err := db.Query(ctx, q, Request{Mode: Unanchored, Alpha: 0.02, WantTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Trace == nil {
		t.Fatal("no trace")
	}
	ss := serial.Trace.Find(obs.PhaseSelectivity)
	if ss == nil {
		t.Fatal("trace missing selectivity span")
	}
	if v, ok := ss.Counter("passed"); !ok || int(v) != serial.Candidates {
		t.Errorf("selectivity passed = %d, Result.Candidates = %d", v, serial.Candidates)
	}
	ws := serial.Trace.Find(obs.PhaseAnchorWave)
	if ws == nil {
		t.Fatal("trace missing anchor-wave span")
	}
	if v, ok := ws.Counter("evaluated"); !ok || int(v) != serial.Evaluated {
		t.Errorf("anchor-wave evaluated = %d, Result.Evaluated = %d", v, serial.Evaluated)
	}
	if serial.Evaluated > 0 && serial.Trace.Find(obs.PhaseAnchor) == nil {
		t.Error("trace missing per-anchor spans")
	}

	par, err := db.Query(ctx, q, Request{Mode: Unanchored, Alpha: 0.02, Parallelism: 4, WantTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(par.Matches, serial.Matches) {
		t.Fatalf("parallel traced answer differs from serial")
	}
	pws := par.Trace.Find(obs.PhaseAnchorWave)
	if pws == nil {
		t.Fatal("parallel trace missing anchor-wave span")
	}
	if w, ok := pws.Counter("workers"); !ok || w < 2 {
		t.Errorf("anchor-wave workers = %d,%v, want the fan-out width", w, ok)
	}
	wave := par.Trace.Find(obs.PhaseWave)
	if wave == nil {
		t.Fatal("parallel trace missing wave spans")
	}
	if _, ok := wave.Counter("accepted"); !ok {
		t.Error("wave span missing accepted counter")
	}
	if _, ok := wave.Counter("discarded"); !ok {
		t.Error("wave span missing discarded counter")
	}
}

// Exact mode traces the exact phase instead of the reduction chain.
func TestTraceExactStructure(t *testing.T) {
	db, q, vp := traceFixture(t)
	res, err := db.Query(context.Background(), q, Request{Mode: Exact, Anchor: &vp, WantTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Find(obs.PhaseExact) == nil {
		t.Fatal("exact trace missing exact span")
	}
	if res.Trace.Find(obs.PhaseReduce) != nil {
		t.Fatal("exact trace has a reduce span")
	}
}

// Batch items each own a trace stamped with their shard identity.
func TestTraceBatchShards(t *testing.T) {
	db, q, vp := traceFixture(t)
	qs := make([]AnchoredQuery, 8)
	for i := range qs {
		qs[i] = AnchoredQuery{Q: q, At: vp}
	}
	out, err := db.QueryBatch(context.Background(), qs, Request{Alpha: 0.01, WantTrace: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Trace == nil {
			t.Fatalf("item %d has no trace", i)
		}
		idx, ok := r.Trace.Root.Counter("batch_index")
		if !ok || int(idx) != i {
			t.Fatalf("item %d batch_index = %d,%v", i, idx, ok)
		}
		if w, ok := r.Trace.Root.Counter("batch_workers"); !ok || w < 1 {
			t.Fatalf("item %d batch_workers = %d,%v", i, w, ok)
		}
	}
}

// Request.Tracer streams the raw reduction events; validation rejects
// the combinations that would run it concurrently or not at all.
func TestRequestTracer(t *testing.T) {
	db, q, vp := traceFixture(t)
	ctx := context.Background()
	var kinds []reduce.EventKind
	req := Request{Anchor: &vp, Alpha: 0.01, Tracer: func(e reduce.Event) {
		kinds = append(kinds, e.Kind)
	}}
	if _, err := db.Query(ctx, q, req); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 {
		t.Fatal("tracer received no events")
	}
	if kinds[0] != reduce.EventRound {
		t.Fatalf("first event %v, want round", kinds[0])
	}

	// Tracing and the span layer compose: the bridge tees.
	kinds = kinds[:0]
	req.WantTrace = true
	res, err := db.Query(ctx, q, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || res.Trace == nil {
		t.Fatal("tracer and trace must both be served")
	}

	bad := []Request{
		{Anchor: &vp, Mode: Exact, Tracer: func(reduce.Event) {}},
		{Anchor: &vp, Alpha: 0.01, Parallelism: 2, Tracer: func(reduce.Event) {}},
	}
	for i, b := range bad {
		if _, err := db.Query(ctx, q, b); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if _, err := db.QueryBatch(ctx, []AnchoredQuery{{Q: q, At: vp}},
		Request{Alpha: 0.01, Tracer: func(reduce.Event) {}}, 2); err == nil {
		t.Error("batch with Tracer accepted")
	}
}

// WriteTracer renders stop events without the meaningless pair suffix.
func TestWriteTracerStopEvents(t *testing.T) {
	var sb strings.Builder
	tr := reduce.WriteTracer(&sb)
	tr(reduce.Event{Kind: reduce.EventCanceled})
	tr(reduce.Event{Kind: reduce.EventVisitStop})
	tr(reduce.Event{Kind: reduce.EventBudgetStop})
	out := sb.String()
	if strings.Contains(out, "u=") || strings.Contains(out, "v=") {
		t.Fatalf("stop events still print a pair suffix:\n%s", out)
	}
	for _, want := range []string{"canceled", "visit-stop", "budget-stop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
