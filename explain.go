package rbq

// EXPLAIN: render what a Request would execute — the compiled plan's
// interned labels, selectivity table, anchor choice, α·|G| budget and
// (in Unanchored mode) the predicted budget split — without running the
// evaluation. The CLI (`rbquery -explain`) prints this before the query
// and the trace's phase breakdown after it.

import (
	"context"
	"fmt"
	"io"

	"rbq/internal/graph"
	"rbq/internal/pattern"
	"rbq/internal/rbany"
)

// ExplainNode is one query node's row of the selectivity table.
type ExplainNode struct {
	// Node is the query node id; Label its label text.
	Node  int
	Label string
	// LabelID is the graph's interned id of the label (-1 when the label
	// is absent from the graph, which empties the answer).
	LabelID int
	// Candidates is how many data nodes carry the label; Mass the summed
	// Potential mass over them (Sampled reports a sample-and-scale
	// estimate rather than an exact scan).
	Candidates int
	Mass       float64
	Sampled    bool
	// Personalized marks the pattern's personalized node u_p; Anchor
	// marks the unanchored evaluation's chosen traversal root.
	Personalized bool
	Anchor       bool
}

// ExplainShare is one anchor candidate's predicted slice of the α·|G|
// budget under the full-spend assumption (the prediction the parallel
// wave scheduler speculates with; serial rollover can only enlarge
// later shares).
type ExplainShare struct {
	V     NodeID
	Pot   float64
	Share int
}

// Explain describes what executing a Request would do.
type Explain struct {
	// Pattern is the pattern's canonical text (the plan-cache key).
	Pattern string
	// Semantics/Mode echo the request.
	Semantics Semantics
	Mode      Mode
	// GraphSize is |G| = nodes + edges; Budget is ⌊α·|G|⌋ (zero in
	// Exact mode).
	GraphSize int
	Alpha     float64
	Budget    int
	// CacheHit reports whether the compiled plan came from the plan
	// cache (the probe this Explain performed counts in PlanCacheStats).
	CacheHit bool
	// Nodes is the per-query-node selectivity table.
	Nodes []ExplainNode
	// Personalized is the pin the evaluation would run from (explicit
	// Request.Anchor or the compile-time unique match); NoNode when the
	// request is Unanchored or no unique match exists.
	Personalized NodeID
	// AnchorNode is the query node unanchored evaluation re-roots at
	// (-1 for anchored requests).
	AnchorNode int
	// Shares is the predicted Unanchored budget split, in evaluation
	// order, truncated to MaxExplainShares rows; nil for anchored
	// requests or when the pattern cannot be anchored.
	Shares []ExplainShare
	// ShareTotal is how many guard-passing anchors the split covers
	// (Shares may be a truncation of it).
	ShareTotal int
}

// MaxExplainShares bounds the predicted-split rows Explain computes: a
// common label can have thousands of guard-passing anchors, and the
// table is for human consumption.
const MaxExplainShares = 8

// Explain compiles q (through the plan cache, like Query) and reports
// what executing req would do — selectivity table, anchor choice,
// budget, predicted split — without running the evaluation. The
// selectivity scan probes every query node's candidate list, so Explain
// is a diagnostic call, not a hot-path one.
func (db *DB) Explain(q *Pattern, req Request) (*Explain, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	snap := db.snapshot()
	pl, hit, err := db.plans.lookup(snap.Aux(), snap.Epoch(), q)
	if err != nil {
		return nil, err
	}
	g := pl.Aux().Graph()
	ex := &Explain{
		Pattern:      q.String(),
		Semantics:    req.Semantics,
		Mode:         req.Mode,
		GraphSize:    g.Size(),
		Alpha:        req.Alpha,
		CacheHit:     hit,
		Personalized: NoNode,
		AnchorNode:   -1,
	}
	if req.Mode != Exact {
		ex.Budget = int(req.Alpha * float64(g.Size()))
	}
	sel := pl.Selectivity()
	labels := pl.Labels()
	for u := 0; u < q.NumNodes(); u++ {
		n := ExplainNode{
			Node:         u,
			Label:        q.Label(pattern.NodeID(u)),
			LabelID:      int(labels[u]),
			Candidates:   sel.CandCount[u],
			Mass:         sel.Mass[u],
			Sampled:      sel.Sampled[u],
			Personalized: pattern.NodeID(u) == q.Personalized(),
		}
		if labels[u] == graph.NoLabel {
			n.LabelID = -1
		}
		ex.Nodes = append(ex.Nodes, n)
	}
	if req.Mode == Unanchored {
		ex.AnchorNode = int(sel.Anchor)
		if ex.AnchorNode >= 0 && ex.AnchorNode < len(ex.Nodes) {
			ex.Nodes[ex.AnchorNode].Anchor = true
		}
		if sel.Unanchored != nil {
			opts := rbany.Options{Alpha: req.Alpha, Split: rbany.Split(req.Split)}
			ex.Shares = toExplainShares(sel.Unanchored.PredictShares(opts, req.Semantics == Subgraph, MaxExplainShares))
			ex.ShareTotal = countPassingAnchors(sel.Unanchored, opts, req.Semantics == Subgraph)
		}
	} else if req.Anchor != nil {
		ex.Personalized = *req.Anchor
	} else if vp, ok := pl.Personalized(); ok {
		ex.Personalized = vp
	}
	return ex, nil
}

func toExplainShares(shares []rbany.Share) []ExplainShare {
	out := make([]ExplainShare, len(shares))
	for i, s := range shares {
		out[i] = ExplainShare{V: s.V, Pot: s.Pot, Share: s.Share}
	}
	return out
}

// countPassingAnchors reports how many anchors the split would cover:
// PredictShares truncated to one row per candidate tells us, cheaply
// enough for a diagnostic (one guard probe per candidate).
func countPassingAnchors(pr *rbany.Prepared, opts rbany.Options, sub bool) int {
	return len(pr.PredictShares(opts, sub, int(^uint(0)>>1)))
}

// WriteText renders the explanation as the CLI prints it.
func (e *Explain) WriteText(w io.Writer) {
	fmt.Fprintf(w, "pattern: %s\n", e.Pattern)
	fmt.Fprintf(w, "semantics: %s  mode: %s\n", semanticsName(e.Semantics), modeName(e.Mode))
	if e.Mode == Exact {
		fmt.Fprintf(w, "budget: unbounded (exact)\n")
	} else {
		fmt.Fprintf(w, "budget: alpha=%g x |G|=%d -> %d items\n", e.Alpha, e.GraphSize, e.Budget)
	}
	fmt.Fprintf(w, "plan cache: %s\n", hitName(e.CacheHit))
	fmt.Fprintf(w, "query nodes:\n")
	fmt.Fprintf(w, "  %-4s %-12s %-8s %10s %14s %s\n", "node", "label", "labelid", "candidates", "mass", "flags")
	for _, n := range e.Nodes {
		flags := ""
		if n.Personalized {
			flags += " personalized"
		}
		if n.Anchor {
			flags += " anchor"
		}
		if n.Sampled {
			flags += " sampled"
		}
		if n.LabelID < 0 {
			flags += " absent"
		}
		fmt.Fprintf(w, "  %-4d %-12s %-8d %10d %14.1f%s\n", n.Node, n.Label, n.LabelID, n.Candidates, n.Mass, flags)
	}
	if e.Mode == Unanchored {
		if len(e.Shares) == 0 {
			fmt.Fprintf(w, "anchors: none pass the guard; answer is empty\n")
			return
		}
		fmt.Fprintf(w, "predicted split over %d anchor(s):\n", e.ShareTotal)
		fmt.Fprintf(w, "  %-10s %14s %10s\n", "anchor", "potential", "share")
		for _, s := range e.Shares {
			fmt.Fprintf(w, "  %-10d %14.1f %10d\n", s.V, s.Pot, s.Share)
		}
		if e.ShareTotal > len(e.Shares) {
			fmt.Fprintf(w, "  ... %d more\n", e.ShareTotal-len(e.Shares))
		}
	} else if e.Personalized != NoNode {
		fmt.Fprintf(w, "personalized pin: node %d\n", e.Personalized)
	} else {
		fmt.Fprintf(w, "personalized pin: unresolved (no unique match)\n")
	}
}

func semanticsName(s Semantics) string {
	if s == Subgraph {
		return "subgraph"
	}
	return "simulation"
}

func modeName(m Mode) string {
	switch m {
	case Exact:
		return "exact"
	case Unanchored:
		return "unanchored"
	}
	return "bounded"
}

func hitName(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// ExplainContext is Explain honoring ctx for symmetry with Query; the
// compile path has no engine loops to interrupt, so ctx only gates
// entry.
func (db *DB) ExplainContext(ctx context.Context, q *Pattern, req Request) (*Explain, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return db.Explain(q, req)
}
