package rbq

// The prepared-query facade: compile a pattern once with DB.Prepare, then
// execute it many times with different pins (or unanchored) through
// PreparedQuery. Every one-shot DB pattern method is a thin wrapper that
// borrows a pool-recycled plan, so the one-shot and prepared paths are
// the same code and return bit-for-bit identical answers.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rbq/internal/plan"
	"rbq/internal/rbany"
	"rbq/internal/reduce"
	"rbq/internal/subiso"
)

// PreparedQuery is a pattern compiled against a DB: interned labels,
// pre-bound reduction semantics for both query classes, the cached
// diameter and unique personalized match, and (lazily) the selectivity
// table unanchored evaluation splits its budget by. Prepare once per
// template, execute many times; a PreparedQuery is immutable and safe
// for concurrent use — per-run transient state comes from the DB's
// scratch pools, exactly as for the one-shot methods.
type PreparedQuery struct {
	db *DB
	pl *plan.Plan
}

// Prepare compiles q for repeated evaluation against db. The compile
// step resolves every label constraint to the graph's interned ids,
// binds the RBSim/RBSub reduction semantics, and resolves the
// personalized node's unique match when one exists; Run-time work is
// then the reduction and matching alone.
func (db *DB) Prepare(q *Pattern) (*PreparedQuery, error) {
	pl, err := plan.New(db.aux, q)
	if err != nil {
		return nil, fmt.Errorf("rbq: %w", err)
	}
	return &PreparedQuery{db: db, pl: pl}, nil
}

// Pattern returns the compiled pattern.
func (pq *PreparedQuery) Pattern() *Pattern { return pq.pl.Pattern() }

// Personalized returns the unique data-graph match of the pattern's
// personalized node resolved at compile time; ok is false when the label
// is absent or ambiguous (use RunAt or RunUnanchored then).
func (pq *PreparedQuery) Personalized() (NodeID, bool) { return pq.pl.Personalized() }

// Run answers the pattern under strong simulation with resource ratio
// alpha, anchored at the compile-time personalized match (the prepared
// form of DB.Simulation).
func (pq *PreparedQuery) Run(alpha float64) (PatternResult, error) {
	return runSimulation(pq.pl, alpha)
}

// RunAt is Run with the personalized node pinned to an explicit data
// node (the prepared form of DB.SimulationAt).
func (pq *PreparedQuery) RunAt(vp NodeID, alpha float64) (PatternResult, error) {
	return runSimulationAt(pq.pl, vp, alpha)
}

// RunBatch evaluates the template at many pins concurrently with one
// shared resource ratio; workers ≤ 0 means one goroutine per CPU.
// Results align with pins; a pin failing label validation yields a
// nil-Matches zero result.
func (pq *PreparedQuery) RunBatch(pins []NodeID, alpha float64, workers int) []PatternResult {
	out := make([]PatternResult, len(pins))
	parallelFor(len(pins), workers, func(i int) {
		res, err := runSimulationAt(pq.pl, pins[i], alpha)
		if err != nil {
			res = PatternResult{Personalized: pins[i]}
		}
		out[i] = res
	})
	return out
}

// RunUnanchored answers the pattern with NO unique personalized match
// under strong simulation (the prepared form of DB.SimulationUnanchored):
// every candidate of the most selective query node is tried as the
// anchor, sharing one α|G| budget split by the plan's selectivity table.
func (pq *PreparedQuery) RunUnanchored(alpha float64) UnanchoredResult {
	return unanchoredResult(pq.pl.SimulationUnanchored(rbany.Options{Alpha: alpha}))
}

// RunExact answers the pattern exactly under strong simulation (the
// prepared form of DB.SimulationExact).
func (pq *PreparedQuery) RunExact() ([]NodeID, error) {
	return runSimulationExact(pq.pl)
}

// RunExactAt is RunExact with the personalized node pinned explicitly.
func (pq *PreparedQuery) RunExactAt(vp NodeID) ([]NodeID, error) {
	if err := checkPin(pq.pl, vp); err != nil {
		return nil, err
	}
	return pq.pl.SimulationExact(vp), nil
}

// RunSubgraph answers the pattern under subgraph isomorphism (the
// prepared form of DB.Subgraph).
func (pq *PreparedQuery) RunSubgraph(alpha float64) (PatternResult, error) {
	return runSubgraph(pq.pl, alpha)
}

// RunSubgraphAt is RunSubgraph with the personalized node pinned
// explicitly (the prepared form of DB.SubgraphAt).
func (pq *PreparedQuery) RunSubgraphAt(vp NodeID, alpha float64) (PatternResult, error) {
	return runSubgraphAt(pq.pl, vp, alpha)
}

// RunSubgraphBatch is RunBatch under subgraph isomorphism.
func (pq *PreparedQuery) RunSubgraphBatch(pins []NodeID, alpha float64, workers int) []PatternResult {
	out := make([]PatternResult, len(pins))
	parallelFor(len(pins), workers, func(i int) {
		res, err := runSubgraphAt(pq.pl, pins[i], alpha)
		if err != nil {
			res = PatternResult{Personalized: pins[i]}
		}
		out[i] = res
	})
	return out
}

// RunSubgraphUnanchored is RunUnanchored under subgraph isomorphism.
func (pq *PreparedQuery) RunSubgraphUnanchored(alpha float64) UnanchoredResult {
	return unanchoredResult(pq.pl.SubgraphUnanchored(rbany.Options{Alpha: alpha}, nil))
}

// RunSubgraphExact answers the pattern exactly under subgraph
// isomorphism; maxSteps caps the backtracking search (0 = unlimited) and
// the bool reports completion.
func (pq *PreparedQuery) RunSubgraphExact(maxSteps int64) ([]NodeID, bool, error) {
	return runSubgraphExact(pq.pl, maxSteps)
}

// RunSubgraphExactAt is RunSubgraphExact with the personalized node
// pinned explicitly.
func (pq *PreparedQuery) RunSubgraphExactAt(vp NodeID, maxSteps int64) ([]NodeID, bool, error) {
	if err := checkPin(pq.pl, vp); err != nil {
		return nil, false, err
	}
	m, complete := pq.pl.SubgraphExact(vp, subgraphOpts(maxSteps))
	return m, complete, nil
}

// --- shared execution helpers (one-shot wrappers borrow pooled plans
// and call the same functions, so both paths stay bit-for-bit equal) ---

// borrowPlan compiles q into a pool-recycled plan; steady-state one-shot
// queries compile without allocating.
func (db *DB) borrowPlan(q *Pattern) *plan.Plan {
	pl, _ := db.prep.Get().(*plan.Plan)
	if pl == nil {
		pl = new(plan.Plan)
	}
	pl.Bind(db.aux, q)
	return pl
}

func (db *DB) releasePlan(pl *plan.Plan) { db.prep.Put(pl) }

func personalizedErr(pl *plan.Plan) error {
	q := pl.Pattern()
	return fmt.Errorf("rbq: the personalized node's label %q does not have a unique match",
		q.Label(q.Personalized()))
}

func checkPin(pl *plan.Plan, vp NodeID) error {
	if err := pl.CheckPin(vp); err != nil {
		return fmt.Errorf("rbq: %w", err)
	}
	return nil
}

func subgraphOpts(maxSteps int64) *subiso.Options { return &subiso.Options{MaxSteps: maxSteps} }

func patternResult(matches []NodeID, stats reduce.Stats, vp NodeID) PatternResult {
	return PatternResult{
		Matches:      matches,
		Personalized: vp,
		FragmentSize: stats.FragmentSize,
		Budget:       stats.Budget,
		Visited:      stats.Visited,
	}
}

func unanchoredResult(r rbany.Result) UnanchoredResult {
	return UnanchoredResult{
		Matches:      r.Matches,
		Candidates:   r.Candidates,
		Evaluated:    r.Evaluated,
		FragmentSize: r.FragmentSize,
		Visited:      r.Visited,
	}
}

func runSimulation(pl *plan.Plan, alpha float64) (PatternResult, error) {
	vp, ok := pl.Personalized()
	if !ok {
		return PatternResult{}, personalizedErr(pl)
	}
	res := pl.Simulation(vp, reduce.Options{Alpha: alpha})
	return patternResult(res.Matches, res.Stats, vp), nil
}

func runSimulationAt(pl *plan.Plan, vp NodeID, alpha float64) (PatternResult, error) {
	if err := checkPin(pl, vp); err != nil {
		return PatternResult{}, err
	}
	res := pl.Simulation(vp, reduce.Options{Alpha: alpha})
	return patternResult(res.Matches, res.Stats, vp), nil
}

func runSimulationExact(pl *plan.Plan) ([]NodeID, error) {
	vp, ok := pl.Personalized()
	if !ok {
		return nil, personalizedErr(pl)
	}
	return pl.SimulationExact(vp), nil
}

func runSubgraph(pl *plan.Plan, alpha float64) (PatternResult, error) {
	vp, ok := pl.Personalized()
	if !ok {
		return PatternResult{}, personalizedErr(pl)
	}
	res := pl.Subgraph(vp, reduce.Options{Alpha: alpha}, nil)
	return patternResult(res.Matches, res.Stats, vp), nil
}

func runSubgraphAt(pl *plan.Plan, vp NodeID, alpha float64) (PatternResult, error) {
	if err := checkPin(pl, vp); err != nil {
		return PatternResult{}, err
	}
	res := pl.Subgraph(vp, reduce.Options{Alpha: alpha}, nil)
	return patternResult(res.Matches, res.Stats, vp), nil
}

func runSubgraphExact(pl *plan.Plan, maxSteps int64) ([]NodeID, bool, error) {
	vp, ok := pl.Personalized()
	if !ok {
		return nil, false, personalizedErr(pl)
	}
	m, complete := pl.SubgraphExact(vp, subgraphOpts(maxSteps))
	return m, complete, nil
}

// planned maps each query in qs to a compiled plan, preparing every
// distinct *Pattern exactly once (pool-recycled); release returns the
// distinct plans to the pool.
func (db *DB) planned(qs []AnchoredQuery) (plans []*plan.Plan, release func()) {
	plans = make([]*plan.Plan, len(qs))
	seen := make(map[*Pattern]*plan.Plan, 8)
	for i, q := range qs {
		pl, ok := seen[q.Q]
		if !ok {
			pl = db.borrowPlan(q.Q)
			seen[q.Q] = pl
		}
		plans[i] = pl
	}
	return plans, func() {
		for _, pl := range seen {
			db.releasePlan(pl)
		}
	}
}

// parallelFor runs eval(0..n-1) on workers goroutines (≤ 0 = one per
// CPU); with one worker it degenerates to an inline loop. The DB's
// structures are immutable and every evaluation borrows private scratch,
// so the iterations are embarrassingly parallel.
func parallelFor(n, workers int, eval func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				eval(i)
			}
		}()
	}
	wg.Wait()
}
