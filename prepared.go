package rbq

// The prepared-query facade: compile a pattern once with DB.Prepare, then
// execute it many times through PreparedQuery.Query (or the legacy Run*
// wrappers, each a one-line Request translation). The one-shot DB methods
// share compilations through the plan cache instead, so every path runs
// the same core and returns bit-for-bit identical answers. Request axes
// apply unchanged here too: Request.Parallelism bounds the intra-query
// worker pool of an Unanchored execution, and PreparedQuery.QueryBatch
// shards its pins across the same pool (internal/exec) — a Plan is
// immutable and every run borrows pooled scratch, so concurrent
// executions of one PreparedQuery were already safe.

import (
	"context"
	"fmt"

	"rbq/internal/plan"
)

// PreparedQuery is a pattern compiled against a DB: interned labels,
// pre-bound reduction semantics for both query classes, the cached
// diameter and unique personalized match, and (lazily) the selectivity
// table unanchored evaluation splits its budget by. Prepare once per
// template, execute many times; a PreparedQuery is immutable and safe
// for concurrent use — per-run transient state comes from the DB's
// scratch pools, exactly as for the one-shot methods.
//
// PreparedQuery pins its compilation for the lifetime of the value,
// independent of the DB's plan cache and its eviction policy; DB.Query
// reaches the same steady state through the cache without the explicit
// handle.
type PreparedQuery struct {
	db *DB
	pl *plan.Plan
}

// Prepare compiles q for repeated evaluation against db. The compile
// step resolves every label constraint to the graph's interned ids,
// binds the RBSim/RBSub reduction semantics, and resolves the
// personalized node's unique match when one exists; execution time is
// then the reduction and matching alone.
//
// The compilation pins the snapshot current at Prepare time: every
// later execution runs against that point-in-time view, unaffected by
// DB.Apply. Re-Prepare (or use DB.Query, whose epoch-keyed cache
// recompiles lazily) to observe mutations.
func (db *DB) Prepare(q *Pattern) (*PreparedQuery, error) {
	pl, err := plan.New(db.snapshot().Aux(), q)
	if err != nil {
		return nil, fmt.Errorf("rbq: %w", err)
	}
	return &PreparedQuery{db: db, pl: pl}, nil
}

// Pattern returns the compiled pattern.
func (pq *PreparedQuery) Pattern() *Pattern { return pq.pl.Pattern() }

// Personalized returns the unique data-graph match of the pattern's
// personalized node resolved at compile time; ok is false when the label
// is absent or ambiguous (pin via Request.Anchor, or run Unanchored).
func (pq *PreparedQuery) Personalized() (NodeID, bool) { return pq.pl.Personalized() }

// Run answers the pattern under strong simulation with resource ratio
// alpha, anchored at the compile-time personalized match.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Bounded, Alpha: alpha}; prefer Query, which adds
// cancellation and per-query stats.
func (pq *PreparedQuery) Run(alpha float64) (PatternResult, error) {
	return toPatternResult(pq.Query(context.Background(), Request{Alpha: alpha}))
}

// RunAt is Run with the personalized node pinned to an explicit data
// node.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Anchor: Pin(vp), Alpha: alpha}.
func (pq *PreparedQuery) RunAt(vp NodeID, alpha float64) (PatternResult, error) {
	return toPatternResult(pq.Query(context.Background(), Request{Anchor: &vp, Alpha: alpha}))
}

// RunBatch evaluates the template at many pins concurrently with one
// shared resource ratio; workers ≤ 0 means one goroutine per CPU.
// Results align with pins; a pin failing label validation yields a
// nil-Matches zero result.
//
// Deprecated-style wrapper: equivalent to QueryBatch with
// Request{Mode: Bounded, Alpha: alpha}.
func (pq *PreparedQuery) RunBatch(pins []NodeID, alpha float64, workers int) []PatternResult {
	res, _ := pq.QueryBatch(context.Background(), pins, Request{Alpha: alpha}, workers)
	return toPatternResults(res, len(pins), func(i int) NodeID { return pins[i] })
}

// RunUnanchored answers the pattern with NO unique personalized match
// under strong simulation: every candidate of the most selective query
// node is tried as the anchor, sharing one α|G| budget split by the
// plan's selectivity table.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Unanchored, Alpha: alpha}.
func (pq *PreparedQuery) RunUnanchored(alpha float64) UnanchoredResult {
	return toUnanchoredResult(pq.Query(context.Background(), Request{Mode: Unanchored, Alpha: alpha}))
}

// RunExact answers the pattern exactly under strong simulation.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Exact}.
func (pq *PreparedQuery) RunExact() ([]NodeID, error) {
	return toMatches(pq.Query(context.Background(), Request{Mode: Exact}))
}

// RunExactAt is RunExact with the personalized node pinned explicitly.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Exact, Anchor: Pin(vp)}.
func (pq *PreparedQuery) RunExactAt(vp NodeID) ([]NodeID, error) {
	return toMatches(pq.Query(context.Background(), Request{Mode: Exact, Anchor: &vp}))
}

// RunSubgraph answers the pattern under subgraph isomorphism.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Alpha: alpha}.
func (pq *PreparedQuery) RunSubgraph(alpha float64) (PatternResult, error) {
	return toPatternResult(pq.Query(context.Background(), Request{Semantics: Subgraph, Alpha: alpha}))
}

// RunSubgraphAt is RunSubgraph with the personalized node pinned
// explicitly.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Anchor: Pin(vp), Alpha: alpha}.
func (pq *PreparedQuery) RunSubgraphAt(vp NodeID, alpha float64) (PatternResult, error) {
	return toPatternResult(pq.Query(context.Background(),
		Request{Semantics: Subgraph, Anchor: &vp, Alpha: alpha}))
}

// RunSubgraphBatch is RunBatch under subgraph isomorphism.
//
// Deprecated-style wrapper: equivalent to QueryBatch with
// Request{Semantics: Subgraph, Alpha: alpha}.
func (pq *PreparedQuery) RunSubgraphBatch(pins []NodeID, alpha float64, workers int) []PatternResult {
	res, _ := pq.QueryBatch(context.Background(), pins, Request{Semantics: Subgraph, Alpha: alpha}, workers)
	return toPatternResults(res, len(pins), func(i int) NodeID { return pins[i] })
}

// RunSubgraphUnanchored is RunUnanchored under subgraph isomorphism.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha}.
func (pq *PreparedQuery) RunSubgraphUnanchored(alpha float64) UnanchoredResult {
	return toUnanchoredResult(pq.Query(context.Background(),
		Request{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha}))
}

// RunSubgraphExact answers the pattern exactly under subgraph
// isomorphism; maxSteps caps the backtracking search (0 = unlimited) and
// the bool reports completion.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Exact, MaxSteps: maxSteps}.
func (pq *PreparedQuery) RunSubgraphExact(maxSteps int64) ([]NodeID, bool, error) {
	return toMatchesComplete(pq.Query(context.Background(),
		Request{Semantics: Subgraph, Mode: Exact, MaxSteps: maxSteps}))
}

// RunSubgraphExactAt is RunSubgraphExact with the personalized node
// pinned explicitly.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Exact, Anchor: Pin(vp), MaxSteps: maxSteps}.
func (pq *PreparedQuery) RunSubgraphExactAt(vp NodeID, maxSteps int64) ([]NodeID, bool, error) {
	return toMatchesComplete(pq.Query(context.Background(),
		Request{Semantics: Subgraph, Mode: Exact, Anchor: &vp, MaxSteps: maxSteps}))
}
