package rbq

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"rbq/internal/gen"
	"rbq/internal/graph"
)

// TestRequestValidation: malformed requests fail with ErrBadRequest
// before touching the engines.
func TestRequestValidation(t *testing.T) {
	db, qs := preparedFixture(t, 500)
	q := qs[0].Q
	bad := []Request{
		{Semantics: 7, Alpha: 0.1},                       // unknown semantics
		{Mode: 9, Alpha: 0.1},                            // unknown mode
		{Alpha: -0.5},                                    // negative alpha
		{Alpha: math.NaN()},                              // NaN alpha
		{Mode: Unanchored, Alpha: -1},                    // negative alpha, Unanchored
		{Mode: Exact, Alpha: 0.5},                        // alpha in Exact mode
		{Mode: Unanchored, Alpha: 0.1, Anchor: Pin(0)},   // anchored Unanchored
		{Semantics: Subgraph, Alpha: 0.1, MaxSteps: -1},  // negative step cap
		{Alpha: 0.1, MaxSteps: 5},                        // MaxSteps on Simulation
		{Alpha: 0.1, Split: SplitEven},                   // Split outside Unanchored
		{Mode: Unanchored, Alpha: 0.1, Split: 3},         // unknown split
		{Semantics: Subgraph, Mode: Exact, MaxSteps: -3}, // negative cap, Exact
		{Semantics: -1, Mode: Exact},                     // negative semantics
		{Alpha: 0.1, Parallelism: -1},                    // negative parallelism
		{Mode: Unanchored, Alpha: 0.1, Parallelism: -4},  // negative parallelism, Unanchored
	}
	for i, req := range bad {
		if _, err := db.Query(context.Background(), q, req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadRequest", i, req, err)
		}
	}
	// α = 0 is NOT an error: budget 0, empty answer — the seed contract.
	if r, err := db.Query(context.Background(), q, Request{Alpha: 0, Anchor: Pin(qs[0].At)}); err != nil || r.Budget != 0 || r.Matches != nil {
		t.Errorf("alpha=0: got %+v, %v; want empty zero-budget result", r, err)
	}
	// A bad request must also fail the batch entry points.
	if _, err := db.QueryBatch(context.Background(), qs, Request{Alpha: -1}, 1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("QueryBatch: err = %v, want ErrBadRequest", err)
	}
	// The error-less legacy batch wrappers keep the positional contract
	// even then: every zero result still carries its pin.
	pr := db.SimulationBatch(qs, -1, 1)
	if len(pr) != len(qs) || pr[0].Personalized != qs[0].At || pr[0].Matches != nil {
		t.Errorf("legacy batch on invalid request: %+v", pr)
	}
	// Batch-specific constraints.
	if _, err := db.QueryBatch(context.Background(), qs, Request{Mode: Unanchored, Alpha: 0.1}, 1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("QueryBatch Unanchored: err = %v, want ErrBadRequest", err)
	}
	if _, err := db.QueryBatch(context.Background(), qs, Request{Alpha: 0.1, Anchor: Pin(0)}, 1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("QueryBatch with Anchor: err = %v, want ErrBadRequest", err)
	}
}

// wantPattern compares a legacy PatternResult against the Result of its
// Request translation.
func wantPattern(t *testing.T, name string, got PatternResult, gotErr error, r Result, rErr error) {
	t.Helper()
	if (gotErr == nil) != (rErr == nil) {
		t.Fatalf("%s: error mismatch: %v vs %v", name, gotErr, rErr)
	}
	if gotErr != nil && gotErr.Error() != rErr.Error() {
		t.Fatalf("%s: error text mismatch: %q vs %q", name, gotErr, rErr)
	}
	want := PatternResult{Matches: r.Matches, Personalized: r.Personalized,
		FragmentSize: r.FragmentSize, Budget: r.Budget, Visited: r.Visited}
	if gotErr != nil {
		want = PatternResult{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: legacy %+v != request %+v", name, got, want)
	}
}

// TestLegacyMethodsEqualRequestCore: every legacy DB method returns
// bit-for-bit the answer of its documented Request translation.
func TestLegacyMethodsEqualRequestCore(t *testing.T) {
	db, qs := preparedFixture(t, 4000)
	ctx := context.Background()
	for _, aq := range qs {
		q, vp := aq.Q, aq.At
		for _, alpha := range []float64{0, 0.001, 0.02} {
			got, gotErr := db.Simulation(q, alpha)
			r, rErr := db.Query(ctx, q, Request{Semantics: Simulation, Mode: Bounded, Alpha: alpha})
			wantPattern(t, "Simulation", got, gotErr, r, rErr)

			got, gotErr = db.SimulationAt(q, vp, alpha)
			r, rErr = db.Query(ctx, q, Request{Mode: Bounded, Anchor: Pin(vp), Alpha: alpha})
			wantPattern(t, "SimulationAt", got, gotErr, r, rErr)

			got, gotErr = db.Subgraph(q, alpha)
			r, rErr = db.Query(ctx, q, Request{Semantics: Subgraph, Alpha: alpha})
			wantPattern(t, "Subgraph", got, gotErr, r, rErr)

			got, gotErr = db.SubgraphAt(q, vp, alpha)
			r, rErr = db.Query(ctx, q, Request{Semantics: Subgraph, Anchor: Pin(vp), Alpha: alpha})
			wantPattern(t, "SubgraphAt", got, gotErr, r, rErr)

			ur := db.SimulationUnanchored(q, alpha)
			r, rErr = db.Query(ctx, q, Request{Mode: Unanchored, Alpha: alpha})
			if rErr != nil || !reflect.DeepEqual(ur, toUnanchoredResult(r, nil)) {
				t.Fatalf("SimulationUnanchored: %+v != %+v (%v)", ur, r, rErr)
			}
			ur = db.SubgraphUnanchored(q, alpha)
			r, rErr = db.Query(ctx, q, Request{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha})
			if rErr != nil || !reflect.DeepEqual(ur, toUnanchoredResult(r, nil)) {
				t.Fatalf("SubgraphUnanchored: %+v != %+v (%v)", ur, r, rErr)
			}
		}

		gotM, gotErr := db.SimulationExact(q)
		r, rErr := db.Query(ctx, q, Request{Mode: Exact})
		if (gotErr == nil) != (rErr == nil) || !reflect.DeepEqual(gotM, r.Matches) {
			t.Fatalf("SimulationExact: %v (%v) != %v (%v)", gotM, gotErr, r.Matches, rErr)
		}
		gotM, gotErr = db.SimulationExactAt(q, vp)
		r, rErr = db.Query(ctx, q, Request{Mode: Exact, Anchor: Pin(vp)})
		if (gotErr == nil) != (rErr == nil) || !reflect.DeepEqual(gotM, r.Matches) {
			t.Fatalf("SimulationExactAt: %v != %v", gotM, r.Matches)
		}
		gotM, gotOK, _ := db.SubgraphExact(q, 100_000)
		r, _ = db.Query(ctx, q, Request{Semantics: Subgraph, Mode: Exact, MaxSteps: 100_000})
		if gotOK != r.Complete || !reflect.DeepEqual(gotM, r.Matches) {
			t.Fatalf("SubgraphExact: %v/%v != %v/%v", gotM, gotOK, r.Matches, r.Complete)
		}
		gotM, gotOK, _ = db.SubgraphExactAt(q, vp, 100_000)
		r, _ = db.Query(ctx, q, Request{Semantics: Subgraph, Mode: Exact, Anchor: Pin(vp), MaxSteps: 100_000})
		if gotOK != r.Complete || !reflect.DeepEqual(gotM, r.Matches) {
			t.Fatalf("SubgraphExactAt: %v/%v != %v/%v", gotM, gotOK, r.Matches, r.Complete)
		}
	}

	// Batches: the legacy wrappers against QueryBatch.
	var batch []AnchoredQuery
	for i := 0; i < 6; i++ {
		batch = append(batch, qs[i%len(qs)])
	}
	legacy := db.SimulationBatch(batch, 0.01, 3)
	rs, err := db.QueryBatch(ctx, batch, Request{Alpha: 0.01}, 3)
	if err != nil || !reflect.DeepEqual(legacy, toPatternResults(rs, len(batch), func(i int) NodeID { return batch[i].At })) {
		t.Fatalf("SimulationBatch != QueryBatch: %v (%v)", legacy, err)
	}
	legacy = db.SubgraphBatch(batch, 0.01, 3)
	rs, err = db.QueryBatch(ctx, batch, Request{Semantics: Subgraph, Alpha: 0.01}, 3)
	if err != nil || !reflect.DeepEqual(legacy, toPatternResults(rs, len(batch), func(i int) NodeID { return batch[i].At })) {
		t.Fatalf("SubgraphBatch != QueryBatch: %v (%v)", legacy, err)
	}
}

// TestPreparedRunMethodsEqualQuery: every PreparedQuery.Run* method
// returns bit-for-bit the answer of its Request translation through
// PreparedQuery.Query.
func TestPreparedRunMethodsEqualQuery(t *testing.T) {
	db, qs := preparedFixture(t, 3000)
	ctx := context.Background()
	aq := qs[0]
	pq, err := db.Prepare(aq.Q)
	if err != nil {
		t.Fatal(err)
	}
	alpha, vp := 0.01, aq.At

	got, gotErr := pq.Run(alpha)
	r, rErr := pq.Query(ctx, Request{Alpha: alpha})
	wantPattern(t, "Run", got, gotErr, r, rErr)

	got, gotErr = pq.RunAt(vp, alpha)
	r, rErr = pq.Query(ctx, Request{Anchor: Pin(vp), Alpha: alpha})
	wantPattern(t, "RunAt", got, gotErr, r, rErr)

	got, gotErr = pq.RunSubgraph(alpha)
	r, rErr = pq.Query(ctx, Request{Semantics: Subgraph, Alpha: alpha})
	wantPattern(t, "RunSubgraph", got, gotErr, r, rErr)

	got, gotErr = pq.RunSubgraphAt(vp, alpha)
	r, rErr = pq.Query(ctx, Request{Semantics: Subgraph, Anchor: Pin(vp), Alpha: alpha})
	wantPattern(t, "RunSubgraphAt", got, gotErr, r, rErr)

	ur := pq.RunUnanchored(alpha)
	r, rErr = pq.Query(ctx, Request{Mode: Unanchored, Alpha: alpha})
	if rErr != nil || !reflect.DeepEqual(ur, toUnanchoredResult(r, nil)) {
		t.Fatalf("RunUnanchored: %+v != %+v", ur, r)
	}
	ur = pq.RunSubgraphUnanchored(alpha)
	r, rErr = pq.Query(ctx, Request{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha})
	if rErr != nil || !reflect.DeepEqual(ur, toUnanchoredResult(r, nil)) {
		t.Fatalf("RunSubgraphUnanchored: %+v != %+v", ur, r)
	}

	gotM, _ := pq.RunExact()
	r, _ = pq.Query(ctx, Request{Mode: Exact})
	if !reflect.DeepEqual(gotM, r.Matches) {
		t.Fatalf("RunExact: %v != %v", gotM, r.Matches)
	}
	gotM, _ = pq.RunExactAt(vp)
	r, _ = pq.Query(ctx, Request{Mode: Exact, Anchor: Pin(vp)})
	if !reflect.DeepEqual(gotM, r.Matches) {
		t.Fatalf("RunExactAt: %v != %v", gotM, r.Matches)
	}
	gotM, gotOK, _ := pq.RunSubgraphExact(50_000)
	r, _ = pq.Query(ctx, Request{Semantics: Subgraph, Mode: Exact, MaxSteps: 50_000})
	if gotOK != r.Complete || !reflect.DeepEqual(gotM, r.Matches) {
		t.Fatalf("RunSubgraphExact: %v/%v != %v/%v", gotM, gotOK, r.Matches, r.Complete)
	}
	gotM, gotOK, _ = pq.RunSubgraphExactAt(vp, 50_000)
	r, _ = pq.Query(ctx, Request{Semantics: Subgraph, Mode: Exact, Anchor: Pin(vp), MaxSteps: 50_000})
	if gotOK != r.Complete || !reflect.DeepEqual(gotM, r.Matches) {
		t.Fatalf("RunSubgraphExactAt: %v/%v != %v/%v", gotM, gotOK, r.Matches, r.Complete)
	}

	// RunBatch / RunSubgraphBatch against PreparedQuery.QueryBatch.
	pins := []NodeID{vp, vp, vp}
	legacy := pq.RunBatch(pins, alpha, 2)
	rs, err := pq.QueryBatch(ctx, pins, Request{Alpha: alpha}, 2)
	if err != nil || !reflect.DeepEqual(legacy, toPatternResults(rs, len(pins), func(i int) NodeID { return pins[i] })) {
		t.Fatalf("RunBatch != QueryBatch: %v (%v)", legacy, err)
	}
	legacy = pq.RunSubgraphBatch(pins, alpha, 2)
	rs, err = pq.QueryBatch(ctx, pins, Request{Semantics: Subgraph, Alpha: alpha}, 2)
	if err != nil || !reflect.DeepEqual(legacy, toPatternResults(rs, len(pins), func(i int) NodeID { return pins[i] })) {
		t.Fatalf("RunSubgraphBatch != QueryBatch: %v (%v)", legacy, err)
	}
}

// TestPlanCacheShareAndEvict: textual identity dedups pointer-distinct
// patterns, counters add up, and the capacity bound holds under
// eviction.
func TestPlanCacheShareAndEvict(t *testing.T) {
	db, qs := preparedFixture(t, 1000)
	q := qs[0].Q

	// Two pointer-distinct parses of the same text share one plan.
	q2, err := ParsePattern(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if q2 == q {
		t.Fatal("fixture broken: same pointer")
	}
	if _, err := db.Query(context.Background(), q, Request{Alpha: 0.01, Anchor: Pin(qs[0].At)}); err != nil {
		t.Fatal(err)
	}
	cs := db.PlanCacheStats()
	if cs.Misses != 1 || cs.Hits != 0 || cs.Size != 1 {
		t.Fatalf("after first query: %+v", cs)
	}
	r, err := db.Query(context.Background(), q2, Request{Alpha: 0.01, Anchor: Pin(qs[0].At), WantStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.PlanCacheHit {
		t.Fatal("pointer-distinct same-text pattern missed the cache")
	}
	cs = db.PlanCacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Size != 1 {
		t.Fatalf("after textual-identity hit: %+v", cs)
	}

	// Eviction: capacity 2, three distinct templates.
	db.SetPlanCacheCapacity(2)
	for _, aq := range qs[:3] {
		if _, err := db.Query(context.Background(), aq.Q, Request{Alpha: 0.01, Anchor: Pin(aq.At)}); err != nil {
			t.Fatal(err)
		}
	}
	cs = db.PlanCacheStats()
	if cs.Size > 2 || cs.Capacity != 2 {
		t.Fatalf("capacity bound violated: %+v", cs)
	}
	// An evicted template still answers correctly (recompiled on miss).
	want, _ := db.SimulationAt(qs[0].Q, qs[0].At, 0.01)
	r, err = db.Query(context.Background(), qs[0].Q, Request{Alpha: 0.01, Anchor: Pin(qs[0].At)})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := toPatternResult(r, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-eviction answer diverged: %+v != %+v", got, want)
	}
}

// TestPlanCacheConcurrentHammer: many goroutines hammer DB.Query over a
// template set larger than the cache capacity (constant churn of
// eviction, recompilation and sharing) and every answer must equal the
// serial baseline. Run with -race in CI.
func TestPlanCacheConcurrentHammer(t *testing.T) {
	db, qs := preparedFixture(t, 2000)
	db.SetPlanCacheCapacity(2) // force eviction churn across templates

	// Serial ground truth per (query, semantics).
	wantSim := make([]PatternResult, len(qs))
	wantSub := make([]PatternResult, len(qs))
	for i, aq := range qs {
		wantSim[i], _ = db.SimulationAt(aq.Q, aq.At, 0.01)
		wantSub[i], _ = db.SubgraphAt(aq.Q, aq.At, 0.01)
	}

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				i := (w + it) % len(qs)
				req := Request{Alpha: 0.01, Anchor: Pin(qs[i].At)}
				want := wantSim[i]
				if (w+it)%2 == 1 {
					req.Semantics = Subgraph
					want = wantSub[i]
				}
				r, err := db.Query(ctx, qs[i].Q, req)
				if err != nil {
					errc <- err
					return
				}
				got, _ := toPatternResult(r, nil)
				if !reflect.DeepEqual(got, want) {
					errc <- fmt.Errorf("worker %d iter %d: %+v != %+v", w, it, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	cs := db.PlanCacheStats()
	if cs.Size > 2 {
		t.Fatalf("capacity bound violated under concurrency: %+v", cs)
	}
	if cs.Hits+cs.Misses < goroutines*iters {
		t.Fatalf("lookup counters lost updates: %+v", cs)
	}
}

// TestQueryCancellation: a canceled context makes a large bounded query
// return promptly with ctx.Err(), on both the one-shot and batch paths.
func TestQueryCancellation(t *testing.T) {
	g := YoutubeLike(60_000, 1)
	db := NewDB(g)
	var q *Pattern
	var vp NodeID
	for seed := int64(0); seed < 50 && q == nil; seed++ {
		cand := NodeID(int(seed*131+17) % g.NumNodes())
		if g.Degree(cand) < 2 {
			continue
		}
		q = gen.PatternAt(g, graph.NodeID(cand), gen.PatternConfig{Nodes: 4, Edges: 8, Seed: seed})
		vp = cand
	}
	if q == nil {
		t.Fatal("could not extract a test pattern")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the query starts: the probe must fire early
	req := Request{Anchor: Pin(vp), Alpha: 0.8}
	start := time.Now()
	res, err := db.Query(ctx, q, req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Matches != nil || res.Visited != 0 {
		t.Fatalf("canceled query leaked a result: %+v", res)
	}
	// The engine stops within one probe stride (~1024 visited items); a
	// generous wall-clock bound keeps the promptness check unflaky.
	if elapsed > 2*time.Second {
		t.Fatalf("canceled query took %v, want prompt return", elapsed)
	}

	// The same query on a live context succeeds (the probe is harmless).
	if _, err := db.Query(context.Background(), q, req); err != nil {
		t.Fatal(err)
	}

	// Batch path: canceled context surfaces ctx.Err() and zero results
	// for unprocessed items.
	batch := []AnchoredQuery{{Q: q, At: vp}, {Q: q, At: vp}}
	rs, err := db.QueryBatch(ctx, batch, Request{Alpha: 0.5}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatch err = %v, want context.Canceled", err)
	}
	if len(rs) != len(batch) {
		t.Fatalf("QueryBatch returned %d results for %d items", len(rs), len(batch))
	}

	// An expiring deadline also cancels mid-search.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer dcancel()
	time.Sleep(time.Millisecond) // let the deadline fire
	if _, err := db.Query(dctx, q, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryStats: WantStats populates the telemetry and the plan-cache
// outcome; without it the hot path carries no Stats.
func TestQueryStats(t *testing.T) {
	db, qs := preparedFixture(t, 1500)
	aq := qs[0]
	ctx := context.Background()

	r, err := db.Query(ctx, aq.Q, Request{Anchor: Pin(aq.At), Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats != nil {
		t.Fatal("Stats present without WantStats")
	}
	r, err = db.Query(ctx, aq.Q, Request{Anchor: Pin(aq.At), Alpha: 0.01, WantStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats == nil {
		t.Fatal("Stats missing with WantStats")
	}
	if !r.Stats.PlanCacheHit {
		t.Fatal("second query on the same template should hit the cache")
	}
	if r.Stats.Reduce.Budget != r.Budget || r.Stats.Reduce.Visited != r.Visited {
		t.Fatalf("Reduce stats disagree with Result: %+v vs %+v", r.Stats.Reduce, r)
	}
	if r.Stats.ExecTime <= 0 {
		t.Fatalf("ExecTime = %v, want > 0", r.Stats.ExecTime)
	}

	// The prepared path reports its compilation as a hit with no plan time.
	pq, err := db.Prepare(aq.Q)
	if err != nil {
		t.Fatal(err)
	}
	r, err = pq.Query(ctx, Request{Anchor: Pin(aq.At), Alpha: 0.01, WantStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats == nil || !r.Stats.PlanCacheHit || r.Stats.PlanTime != 0 {
		t.Fatalf("prepared-path stats: %+v", r.Stats)
	}
}

// TestQueryNilPattern: a nil pattern is rejected, not a panic.
func TestQueryNilPattern(t *testing.T) {
	db, _ := preparedFixture(t, 500)
	if _, err := db.Query(context.Background(), nil, Request{Alpha: 0.1}); err == nil {
		t.Fatal("nil pattern accepted")
	}
}
