// Package rbq is a Go implementation of resource-bounded graph query
// answering after Fan, Wang & Wu, "Querying Big Graphs within Bounded
// Resources" (SIGMOD 2014).
//
// Given a query Q, a graph G and a resource ratio α ∈ (0,1), rbq answers Q
// by materializing a query-specific fragment G_Q with |G_Q| ≤ α·|G| and
// evaluating Q exactly on the fragment — trading a controlled amount of
// recall for a hard bound on the data accessed. Three query classes are
// supported:
//
//   - simulation queries (graph patterns under strong simulation), via the
//     paper's RBSim;
//   - subgraph queries (graph patterns under subgraph isomorphism), via
//     RBSub;
//   - reachability queries, via RBReach over a hierarchical landmark index
//     (never returning false positives).
//
// The exact baselines the paper compares against (MatchOpt, VF2Opt, BFS,
// BFSOpt, LM) are available too, so applications can calibrate α.
//
// Entry point: wrap a Graph in a DB, then issue a Request.
//
//	g := rbq.YoutubeLike(100_000, 1)
//	db := rbq.NewDB(g)
//	res, err := db.Query(ctx, q, rbq.Request{Alpha: 0.001})
//
// Request is the single declarative query value: Semantics selects
// strong simulation or subgraph isomorphism, Mode selects
// bounded/exact/unanchored evaluation, and the optional Anchor pins the
// personalized node. DB.Query honors context cancellation and routes
// compilation through a DB-level plan cache, so independent callers
// issuing the same hot template share one compiled plan. Workloads that
// hold a template explicitly can still compile once with DB.Prepare and
// execute it via PreparedQuery.Query.
//
// The named methods (Simulation, SubgraphAt, …) predate Request and are
// kept as one-line wrappers over the same core; new code should prefer
// DB.Query.
package rbq

import (
	"bufio"
	"context"
	"io"
	"sync"
	"sync/atomic"

	"rbq/internal/accuracy"
	"rbq/internal/calibrate"
	"rbq/internal/dataset"
	"rbq/internal/delta"
	"rbq/internal/gen"
	"rbq/internal/graph"
	"rbq/internal/landmark"
	"rbq/internal/pattern"
	"rbq/internal/rbreach"
	"rbq/internal/reach"
	"rbq/internal/store"
)

// NodeID identifies a node of a Graph.
type NodeID = graph.NodeID

// NoNode is returned by failed node lookups.
const NoNode = graph.NoNode

// Graph is an immutable node-labeled directed graph.
type Graph = graph.Graph

// GraphBuilder constructs Graphs.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder with capacity hints.
func NewGraphBuilder(nodes, edges int) *GraphBuilder { return graph.NewBuilder(nodes, edges) }

// Pattern is a graph pattern query Q = (V_p, E_p, f_v, u_p, u_o) with a
// personalized node and an output node.
type Pattern = pattern.Pattern

// PatternBuilder constructs Patterns.
type PatternBuilder = pattern.Builder

// NewPatternBuilder returns an empty pattern builder.
func NewPatternBuilder() *PatternBuilder { return pattern.NewBuilder() }

// ParsePattern reads the textual pattern format (see Pattern.String).
func ParsePattern(text string) (*Pattern, error) { return pattern.Parse(text) }

// Accuracy holds precision, recall and F-measure of an approximate answer
// set against the exact one (Section 3 of the paper).
type Accuracy = accuracy.Result

// MatchAccuracy scores an approximate match set against the exact answer.
func MatchAccuracy(exact, approx []NodeID) Accuracy { return accuracy.Matches(exact, approx) }

// DB wraps a data graph with the offline auxiliary structures the
// resource-bounded algorithms need. Constructing a DB performs the paper's
// once-for-all preprocessing for pattern queries (per-node degree and
// neighborhood label histograms, built in parallel); reachability indexing
// is separate (see BuildReachOracle) because it depends on α.
//
// The DB also owns (through its auxiliary structure) the per-query scratch
// pools the engines draw on: each query borrows a dense, graph-sized
// scratch — reduction stamp arrays, a reusable fragment, its CSR
// materialization and the matcher's bitsets — and returns it when done, so
// steady-state queries allocate only their result slice. The pools are
// concurrency-safe and every borrower gets a private scratch, which is why
// SimulationBatch/SubgraphBatch workers can share one DB without locking.
//
// Every pattern method routes through the request core (see Query): the
// named methods build the equivalent Request, the plan cache supplies
// the compiled form, and PreparedQuery pins a compilation explicitly for
// repeated execution.
//
// A DB is mutable through Apply (see mutate.go): mutations are buffered
// in a delta over an immutable base graph and published as immutable
// snapshots through one atomic pointer, so readers never block and
// every query executes against one consistent epoch. A DB constructed
// over a graph it does not mutate behaves exactly as before — the
// static hot path pays one snapshot-pointer load.
type DB struct {
	// snap is the current published snapshot (graph view + aux + epoch).
	// Readers pin it with one atomic load per query; Apply/Compact are
	// the only writers.
	snap atomic.Pointer[delta.Snapshot]

	// plans is the bounded DB-level cache of compiled plans, keyed by
	// pattern identity and stamped with the snapshot epoch they were
	// compiled at (see plancache.go).
	plans *planCache

	// mu serializes the mutation side (Apply, Compact, threshold
	// changes, Close); it is never taken on the query path.
	mu          sync.Mutex
	pending     *delta.Delta // cumulative live delta over the current base
	compactAt   int          // live-op threshold that triggers compaction
	compactFrac float64      // splice ceiling for incremental compaction
	compactions uint64

	// Telemetry of the most recent compaction (guarded by mu).
	lastCompactNs      int64
	lastCompactTouched int
	lastCompactMode    CompactMode

	// warm is the background plan-cache warmer (see warm.go); it has its
	// own mutex so warming never contends with mu.
	warm warmer

	// Persistence (nil/zero for in-memory DBs; see persist.go). store is
	// the open WAL + base-image directory, seq the last batch sequence
	// acked to it, recovery what OpenDB found on disk.
	store         *store.Store
	seq           uint64
	closed        bool
	recovery      RecoveryStats
	lastBaseErr   error // error of the most recent base-image write, nil if it succeeded
	baseWriteErrs uint64
}

// NewDB builds the offline auxiliary structure for g and returns a handle.
//
// A graph obtained from a mutated DB (see Graph after Apply) may be an
// overlay view; NewDB compacts such a view into a standalone base first,
// so any *Graph the library hands out is a valid argument.
func NewDB(g *Graph) *DB {
	g = g.Compact() // identity for base graphs
	db := &DB{
		plans:       newPlanCache(DefaultPlanCacheCapacity),
		compactAt:   DefaultCompactThreshold,
		compactFrac: graph.DefaultCompactSpliceFraction,
	}
	db.warm.n = DefaultPlanWarmCount
	aux := graph.BuildAux(g)
	db.snap.Store(delta.NewBase(g, aux, 0))
	db.pending = delta.New(g, aux)
	return db
}

// snapshot pins the current published snapshot: one atomic load, the
// only cost mutation support adds to the static query hot path.
func (db *DB) snapshot() *delta.Snapshot { return db.snap.Load() }

// Load reads a graph — in either the textual edge-list format (see Save)
// or the compact binary format (see SaveBinary), auto-detected — and wraps
// it in a DB.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(4); err == nil && string(magic) == "RBQ1" {
		g, err := dataset.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		return NewDB(g), nil
	}
	g, err := dataset.Read(br)
	if err != nil {
		return nil, err
	}
	return NewDB(g), nil
}

// Save writes the graph — the current snapshot's merged view — in a
// plain-text edge-list format readable by Load.
func (db *DB) Save(w io.Writer) error { return dataset.Write(w, db.snapshot().Graph()) }

// SaveBinary writes the graph in a compact binary format readable by Load,
// an order of magnitude faster to parse than the text format.
func (db *DB) SaveBinary(w io.Writer) error { return dataset.WriteBinary(w, db.snapshot().Graph()) }

// Graph returns the current snapshot's graph view. After Apply it
// includes the live delta; the value is immutable, so callers holding
// it keep a consistent point-in-time view across later mutations.
func (db *DB) Graph() *Graph { return db.snapshot().Graph() }

// PatternResult reports a resource-bounded pattern query evaluation.
type PatternResult struct {
	// Matches are the data nodes matching the pattern's output node,
	// sorted ascending.
	Matches []NodeID
	// Personalized is v_p, the unique match of the personalized node.
	Personalized NodeID
	// FragmentSize is |G_Q| (nodes+edges) actually extracted; Budget is
	// the cap α|G|; Visited counts data items examined during reduction.
	FragmentSize, Budget, Visited int
}

// Simulation answers the pattern under strong simulation with resource
// ratio alpha (the paper's RBSim).
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Simulation, Mode: Bounded, Alpha: alpha}; prefer
// Query, which adds cancellation and per-query stats.
func (db *DB) Simulation(q *Pattern, alpha float64) (PatternResult, error) {
	return toPatternResult(db.Query(context.Background(), q, Request{Alpha: alpha}))
}

// SimulationExact answers the pattern under strong simulation exactly (the
// optimized baseline MatchOpt, which searches the d_Q-ball of v_p).
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Simulation, Mode: Exact}.
func (db *DB) SimulationExact(q *Pattern) ([]NodeID, error) {
	return toMatches(db.Query(context.Background(), q, Request{Mode: Exact}))
}

// Subgraph answers the pattern under subgraph isomorphism with resource
// ratio alpha (the paper's RBSub).
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Bounded, Alpha: alpha}.
func (db *DB) Subgraph(q *Pattern, alpha float64) (PatternResult, error) {
	return toPatternResult(db.Query(context.Background(), q, Request{Semantics: Subgraph, Alpha: alpha}))
}

// SubgraphExact answers the pattern under subgraph isomorphism exactly
// (the optimized baseline VF2Opt). maxSteps caps the backtracking search
// (0 = unlimited); the second result reports whether it completed.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Exact, MaxSteps: maxSteps}.
func (db *DB) SubgraphExact(q *Pattern, maxSteps int64) ([]NodeID, bool, error) {
	return toMatchesComplete(db.Query(context.Background(), q,
		Request{Semantics: Subgraph, Mode: Exact, MaxSteps: maxSteps}))
}

// SimulationAt is Simulation with the personalized node pinned to an
// explicit data node, bypassing the unique-label lookup. The paper's
// setting guarantees a unique match for u_p; pinning covers batch
// workloads where many anchor nodes share a label.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Bounded, Anchor: Pin(vp), Alpha: alpha}.
func (db *DB) SimulationAt(q *Pattern, vp NodeID, alpha float64) (PatternResult, error) {
	return toPatternResult(db.Query(context.Background(), q, Request{Anchor: &vp, Alpha: alpha}))
}

// SubgraphAt is Subgraph with the personalized node pinned explicitly.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Anchor: Pin(vp), Alpha: alpha}.
func (db *DB) SubgraphAt(q *Pattern, vp NodeID, alpha float64) (PatternResult, error) {
	return toPatternResult(db.Query(context.Background(), q,
		Request{Semantics: Subgraph, Anchor: &vp, Alpha: alpha}))
}

// SimulationExactAt is SimulationExact with the personalized node pinned
// explicitly.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Exact, Anchor: Pin(vp)}.
func (db *DB) SimulationExactAt(q *Pattern, vp NodeID) ([]NodeID, error) {
	return toMatches(db.Query(context.Background(), q, Request{Mode: Exact, Anchor: &vp}))
}

// SubgraphExactAt is SubgraphExact with the personalized node pinned
// explicitly.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Exact, Anchor: Pin(vp), MaxSteps: maxSteps}.
func (db *DB) SubgraphExactAt(q *Pattern, vp NodeID, maxSteps int64) ([]NodeID, bool, error) {
	return toMatchesComplete(db.Query(context.Background(), q,
		Request{Semantics: Subgraph, Mode: Exact, Anchor: &vp, MaxSteps: maxSteps}))
}

// ReachExact answers a reachability query exactly by BFS over the
// current snapshot.
func (db *DB) ReachExact(from, to NodeID) bool { return reach.BFS(db.snapshot().Graph(), from, to) }

// ReachResult reports one resource-bounded reachability evaluation.
type ReachResult struct {
	// Answer is the verdict. True is always correct (Theorem 4(c): no
	// false positives); false may be a false negative.
	Answer bool
	// Visited counts index items touched, at most the oracle's budget.
	Visited int
}

// ReachOracle answers reachability queries within bounded resources (the
// paper's RBReach over a hierarchical landmark index).
type ReachOracle struct {
	inner *rbreach.Oracle
}

// BuildReachOracle runs the offline pipeline of Section 5 — condensation
// plus hierarchical landmark indexing with resource ratio alpha — and
// returns a query oracle. Each query then visits at most α|G| items.
func (db *DB) BuildReachOracle(alpha float64) *ReachOracle {
	return &ReachOracle{inner: rbreach.New(db.snapshot().Graph(), landmark.BuildOptions{Alpha: alpha})}
}

// Reach answers whether from reaches to.
func (o *ReachOracle) Reach(from, to NodeID) ReachResult {
	r := o.inner.Query(from, to)
	return ReachResult{Answer: r.Answer, Visited: r.Visited}
}

// IndexSize returns the landmark index footprint (landmarks + index edges),
// bounded by α|G|.
func (o *ReachOracle) IndexSize() int { return o.inner.Index.Size() }

// Save persists the oracle's offline state (condensation + landmark
// index + budget) so it can be reloaded without re-running the
// preprocessing (see LoadReachOracle).
func (o *ReachOracle) Save(w io.Writer) error { return rbreach.SaveOracle(w, o.inner) }

// LoadReachOracle reads an oracle written by ReachOracle.Save. The oracle
// is self-contained: it answers queries in the node ids of the graph it
// was built from, without needing that graph loaded.
func LoadReachOracle(r io.Reader) (*ReachOracle, error) {
	inner, err := rbreach.LoadOracle(r)
	if err != nil {
		return nil, err
	}
	return &ReachOracle{inner: inner}, nil
}

// YoutubeLike generates a power-law stand-in for the paper's Youtube graph
// with n nodes (average degree ≈ 2.8; see DESIGN.md §4 on the
// substitution).
func YoutubeLike(n int, seed int64) *Graph { return dataset.YoutubeLike(n, seed) }

// YahooLike generates a power-law stand-in for the paper's Yahoo web graph
// with n nodes (average degree ≈ 5.0).
func YahooLike(n int, seed int64) *Graph { return dataset.YahooLike(n, seed) }

// RandomGraph generates a uniformly random labeled graph over the paper's
// 15-label alphabet (|E| edges, deterministic in seed). Set powerLaw for
// heavy-tailed degrees.
func RandomGraph(nodes, edges int, seed int64, powerLaw bool) *Graph {
	return gen.Random(gen.GraphConfig{Nodes: nodes, Edges: edges, Seed: seed, PowerLaw: powerLaw})
}

// ExtractPattern samples a (nodes, edges)-shaped pattern that is
// guaranteed to match: it copies real structure around a random seed node
// and gives that node a unique label. It returns the pattern, a copy of
// the graph with the unique label installed (query that DB!), and v_p.
func ExtractPattern(g *Graph, nodes, edges int, seed int64) (*Pattern, *Graph, NodeID, error) {
	return gen.PatternFromGraph(g, gen.PatternConfig{Nodes: nodes, Edges: edges, Seed: seed})
}

// AnchoredQuery is a pattern pinned at an explicit personalized match,
// used by batch and calibration APIs.
type AnchoredQuery struct {
	Q  *Pattern
	At NodeID
}

// SimulationBatch evaluates many pinned simulation queries concurrently
// with the same resource ratio. workers ≤ 0 means one goroutine per
// available CPU. Each distinct template in qs is compiled exactly once
// through the plan cache (batch workloads typically evaluate a handful
// of templates at many pins); the DB's structures are immutable, so
// evaluation is embarrassingly parallel. Results are positionally
// aligned with qs, with a nil-Matches zero result for queries whose pin
// fails label validation.
//
// Deprecated-style wrapper: equivalent to QueryBatch with
// Request{Mode: Bounded, Alpha: alpha}; prefer QueryBatch, which adds
// cancellation.
func (db *DB) SimulationBatch(qs []AnchoredQuery, alpha float64, workers int) []PatternResult {
	res, _ := db.QueryBatch(context.Background(), qs, Request{Alpha: alpha}, workers)
	return toPatternResults(res, len(qs), func(i int) NodeID { return qs[i].At })
}

// SubgraphBatch is SimulationBatch under subgraph isomorphism.
//
// Deprecated-style wrapper: equivalent to QueryBatch with
// Request{Semantics: Subgraph, Alpha: alpha}.
func (db *DB) SubgraphBatch(qs []AnchoredQuery, alpha float64, workers int) []PatternResult {
	res, _ := db.QueryBatch(context.Background(), qs, Request{Semantics: Subgraph, Alpha: alpha}, workers)
	return toPatternResults(res, len(qs), func(i int) NodeID { return qs[i].At })
}

// UnanchoredResult reports a pattern evaluation without a personalized
// node (the Section 7 extension): the budget α|G| is divided among the
// candidates of the most selective query node.
type UnanchoredResult struct {
	// Matches is the union of per-anchor answers, sorted.
	Matches []NodeID
	// Candidates is how many anchor candidates passed the guard;
	// Evaluated how many were run before the budget drained.
	Candidates, Evaluated int
	// FragmentSize totals |G_Q| across anchors (≤ α|G| + one share).
	FragmentSize int
	// Visited totals data items examined.
	Visited int
}

// SimulationUnanchored answers a pattern with NO unique personalized
// match under strong simulation: every data node carrying the most
// selective query label is tried as the anchor, sharing one α|G| budget
// split proportionally to each anchor's Potential-mass selectivity.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Mode: Unanchored, Alpha: alpha}.
func (db *DB) SimulationUnanchored(q *Pattern, alpha float64) UnanchoredResult {
	return toUnanchoredResult(db.Query(context.Background(), q, Request{Mode: Unanchored, Alpha: alpha}))
}

// SubgraphUnanchored is SimulationUnanchored under subgraph isomorphism.
//
// Deprecated-style wrapper: equivalent to Query with
// Request{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha}.
func (db *DB) SubgraphUnanchored(q *Pattern, alpha float64) UnanchoredResult {
	return toUnanchoredResult(db.Query(context.Background(), q,
		Request{Semantics: Subgraph, Mode: Unanchored, Alpha: alpha}))
}

// CalibrationPoint is one sample of the empirical accuracy-vs-α curve.
type CalibrationPoint struct {
	Alpha        float64
	Accuracy     float64
	MeanFragment float64
}

// SimulationCurve evaluates the workload at each α against the exact
// baseline and returns the empirical accuracy curve — the data behind the
// paper's Fig. 8(c) and its Section 7 question of how η relates to α.
// Equivalent to SimulationCurveContext with context.Background().
func (db *DB) SimulationCurve(qs []AnchoredQuery, alphas []float64) []CalibrationPoint {
	return db.SimulationCurveContext(context.Background(), qs, alphas)
}

// SimulationCurveContext is SimulationCurve with cooperative
// cancellation: sweeps over large workloads are long-running, and a
// fired ctx stops the sweep and returns the points sampled so far.
func (db *DB) SimulationCurveContext(ctx context.Context, qs []AnchoredQuery, alphas []float64) []CalibrationPoint {
	pts := calibrate.Curve(ctx, db.snapshot().Aux(), toCalibrate(qs), alphas)
	return fromCalibrate(pts)
}

// MinAlphaForAccuracy searches (0, hi] for the smallest resource ratio
// whose workload accuracy reaches target (refined by `refine` bisection
// steps). ok is false when even hi misses the target. Equivalent to
// MinAlphaForAccuracyContext with context.Background().
func (db *DB) MinAlphaForAccuracy(qs []AnchoredQuery, target, hi float64, refine int) (CalibrationPoint, bool) {
	return db.MinAlphaForAccuracyContext(context.Background(), qs, target, hi, refine)
}

// MinAlphaForAccuracyContext is MinAlphaForAccuracy with cooperative
// cancellation: a fired ctx stops the search at the best point found so
// far.
func (db *DB) MinAlphaForAccuracyContext(ctx context.Context, qs []AnchoredQuery, target, hi float64, refine int) (CalibrationPoint, bool) {
	pt, ok := calibrate.MinAlpha(ctx, db.snapshot().Aux(), toCalibrate(qs), target, hi, refine)
	return CalibrationPoint{Alpha: pt.Alpha, Accuracy: pt.Accuracy, MeanFragment: pt.MeanFragment}, ok
}

func toCalibrate(qs []AnchoredQuery) []calibrate.Query {
	out := make([]calibrate.Query, len(qs))
	for i, q := range qs {
		out[i] = calibrate.Query{P: q.Q, VP: q.At}
	}
	return out
}

func fromCalibrate(pts []calibrate.Point) []CalibrationPoint {
	out := make([]CalibrationPoint, len(pts))
	for i, p := range pts {
		out[i] = CalibrationPoint{Alpha: p.Alpha, Accuracy: p.Accuracy, MeanFragment: p.MeanFragment}
	}
	return out
}
